//! The discrete-event execution engine.

use crate::node::{Ctx, Node, SendBuf};
use crate::outcome::{outcome_of, FailReason, Outcome};
use crate::probe::Probe;
use crate::scheduler::{FifoScheduler, Scheduler, Token};
use crate::topology::{EdgeId, NodeId, Topology};
use std::collections::VecDeque;

/// Default step limit for a topology of `n` nodes: generous enough for any
/// protocol in this workspace (`A-LEADuni` delivers `n²` messages,
/// `PhaseAsyncLead` delivers `2n²`).
///
/// A `const fn`, so callers evaluate it once up front — no fn-pointer
/// indirection on any path near the engine loop.
pub const fn default_step_limit(n: usize) -> u64 {
    16 * (n as u64) * (n as u64) + 4096
}

/// Maximum number of entries the dense `(node, successor) → edge` table
/// may hold (`n²` entries of 4 bytes, so at most 4 MiB per engine). Larger
/// topologies fall back to the per-node linear scan, which is fine there:
/// a topology that big is never swept trial-by-trial.
const DENSE_EDGE_TABLE_MAX: usize = 1 << 20;

/// Builder wiring nodes, topology, wake-ups, scheduler and probe into one
/// runnable simulation.
///
/// # Examples
///
/// See the crate-level example. Typical protocol harnesses construct one
/// `SimBuilder` per trial:
///
/// ```
/// use ring_sim::{FnNode, RandomScheduler, SimBuilder, Topology};
///
/// let exec = SimBuilder::new(Topology::ring(3))
///     .node(0, FnNode::new(|_, m: u64, ctx: &mut ring_sim::Ctx<'_, u64>| {
///         ctx.terminate(Some(m));
///     })
///     .on_wake(|ctx| { ctx.send(9); ctx.terminate(Some(9)); }))
///     .node(1, FnNode::new(|_, m, ctx: &mut ring_sim::Ctx<'_, u64>| {
///         ctx.send(m);
///         ctx.terminate(Some(m));
///     }))
///     .node(2, FnNode::new(|_, m, ctx: &mut ring_sim::Ctx<'_, u64>| {
///         ctx.send(m);
///         ctx.terminate(Some(m));
///     }))
///     .wake(0)
///     .scheduler(RandomScheduler::new(1))
///     .run();
/// assert_eq!(exec.outcome.elected(), Some(9));
/// ```
pub struct SimBuilder<'p, M> {
    topology: Topology,
    nodes: Vec<Option<Box<dyn Node<M> + 'p>>>,
    wakes: Vec<NodeId>,
    scheduler: Box<dyn Scheduler + 'p>,
    step_limit: u64,
    probe: Option<&'p mut dyn Probe<M>>,
}

impl<'p, M> std::fmt::Debug for SimBuilder<'p, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBuilder")
            .field("topology", &self.topology)
            .field("wakes", &self.wakes)
            .field("step_limit", &self.step_limit)
            .finish_non_exhaustive()
    }
}

impl<'p, M> SimBuilder<'p, M> {
    /// Starts a builder for the given topology with the default FIFO
    /// scheduler and step limit.
    pub fn new(topology: Topology) -> Self {
        let n = topology.len();
        Self {
            topology,
            nodes: (0..n).map(|_| None).collect(),
            wakes: Vec::new(),
            scheduler: Box::new(FifoScheduler::new()),
            step_limit: default_step_limit(n),
            probe: None,
        }
    }

    /// Installs the behaviour of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already assigned.
    pub fn node(mut self, id: NodeId, node: impl Node<M> + 'p) -> Self {
        assert!(id < self.nodes.len(), "node id {id} out of range");
        assert!(self.nodes[id].is_none(), "node {id} assigned twice");
        self.nodes[id] = Some(Box::new(node));
        self
    }

    /// Installs a boxed behaviour of node `id` (for heterogeneous
    /// protocol/attack mixes built at runtime).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already assigned.
    pub fn boxed_node(mut self, id: NodeId, node: Box<dyn Node<M> + 'p>) -> Self {
        assert!(id < self.nodes.len(), "node id {id} out of range");
        assert!(self.nodes[id].is_none(), "node {id} assigned twice");
        self.nodes[id] = Some(node);
        self
    }

    /// Schedules a spontaneous wake-up for `id` (wake-ups are scheduled
    /// like messages, so they interleave obliviously with deliveries).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn wake(mut self, id: NodeId) -> Self {
        assert!(id < self.nodes.len(), "wake id {id} out of range");
        self.wakes.push(id);
        self
    }

    /// Schedules wake-ups for every node, in id order.
    pub fn wake_all(mut self) -> Self {
        let n = self.nodes.len();
        self.wakes.extend(0..n);
        self
    }

    /// Replaces the default FIFO scheduler.
    pub fn scheduler(mut self, scheduler: impl Scheduler + 'p) -> Self {
        self.scheduler = Box::new(scheduler);
        self
    }

    /// Overrides the step limit (each wake-up or delivery is one step).
    pub fn step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Attaches an observation probe for this run.
    pub fn probe(mut self, probe: &'p mut dyn Probe<M>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Runs the simulation to completion and returns the [`Execution`].
    ///
    /// The run ends when all nodes have terminated, when no tokens remain
    /// (deadlock), or when the step limit is exceeded.
    ///
    /// This is the one-shot path: it builds a fresh [`Engine`] per call.
    /// Batch workloads that run many trials over the same topology should
    /// hold an [`Engine`] and call [`Engine::run`] directly to reuse its
    /// buffers.
    ///
    /// # Panics
    ///
    /// Panics if any node id was left without a behaviour — an incomplete
    /// wiring is a programming error.
    pub fn run(self) -> Execution {
        let SimBuilder {
            topology,
            nodes,
            wakes,
            mut scheduler,
            step_limit,
            probe,
        } = self;
        let mut nodes: Vec<Box<dyn Node<M> + 'p>> = nodes
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("node {i} has no behaviour")))
            .collect();
        let mut engine = Engine::new(topology);
        engine.run_session(&mut nodes, &wakes, &mut *scheduler, step_limit, probe)
    }
}

/// A reusable simulation engine for one fixed [`Topology`].
///
/// [`SimBuilder::run`] allocates the per-run working set — link queues,
/// adjacency tables, per-node counters — from scratch on every call. For a
/// Monte-Carlo sweep of many thousands of trials over the *same* topology
/// that churn dominates the runtime, so `Engine` keeps those buffers alive
/// across runs: [`Engine::run`] resets them in place (queue capacities are
/// retained) and executes a fresh set of node behaviours.
///
/// An `Engine` produces bit-identical [`Execution`]s to the equivalent
/// [`SimBuilder::run`] call — it is purely an allocation-reuse facility.
/// The `fle-harness` crate gives every worker thread its own `Engine`.
///
/// # Examples
///
/// ```
/// use ring_sim::{Ctx, Engine, FifoScheduler, FnNode, Node, Outcome, Topology};
///
/// let mut engine = Engine::new(Topology::ring(2));
/// for trial in 0..3u64 {
///     let mut nodes: Vec<Box<dyn Node<u64>>> = vec![
///         Box::new(
///             FnNode::new(|_, m: u64, ctx: &mut Ctx<'_, u64>| ctx.terminate(Some(m)))
///                 .on_wake(move |ctx| {
///                     ctx.send(trial);
///                     ctx.terminate(Some(trial));
///                 }),
///         ),
///         Box::new(FnNode::new(|_, m: u64, ctx: &mut Ctx<'_, u64>| {
///             ctx.terminate(Some(m));
///         })),
///     ];
///     let exec = engine.run(&mut nodes, &[0], &mut FifoScheduler::new(), 1000);
///     assert_eq!(exec.outcome, Outcome::Elected(trial));
/// }
/// ```
pub struct Engine<M> {
    topology: Topology,
    n: usize,
    out_neighbors: Vec<Vec<NodeId>>,
    /// Dense `(node, successor) → edge` table: entry `me * n + to` is the
    /// edge id of the link `me → to`, or `u32::MAX` when absent. Empty when
    /// the topology is too large ([`DENSE_EDGE_TABLE_MAX`]).
    edge_of_dense: Vec<u32>,
    /// Per-node `(successor, edge)` fallback list for topologies too large
    /// for the dense table.
    out_edge_of: Vec<Vec<(NodeId, EdgeId)>>,
    queues: Vec<VecDeque<M>>,
    outputs: Vec<Option<Option<u64>>>,
    sent: Vec<u64>,
    received: Vec<u64>,
    /// Reusable per-activation send buffer lent to [`Ctx`].
    sends: SendBuf<M>,
}

impl<M> std::fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("topology", &self.topology)
            .finish_non_exhaustive()
    }
}

impl<M> Engine<M> {
    /// Creates an engine for `topology`, preallocating the working set.
    pub fn new(topology: Topology) -> Self {
        let n = topology.len();
        let out_neighbors: Vec<Vec<NodeId>> = (0..n).map(|i| topology.out_neighbors(i)).collect();
        let out_edge_of: Vec<Vec<(NodeId, EdgeId)>> = (0..n)
            .map(|i| {
                topology
                    .out_edges(i)
                    .iter()
                    .map(|&e| (topology.edges()[e].1, e))
                    .collect()
            })
            .collect();
        let edge_of_dense = if n
            .checked_mul(n)
            .is_some_and(|nn| nn <= DENSE_EDGE_TABLE_MAX)
            && topology.edges().len() < u32::MAX as usize
        {
            let mut table = vec![u32::MAX; n * n];
            for (e, &(from, to)) in topology.edges().iter().enumerate() {
                table[from * n + to] = e as u32;
            }
            table
        } else {
            Vec::new()
        };
        let queues = (0..topology.edges().len())
            .map(|_| VecDeque::new())
            .collect();
        Self {
            topology,
            n,
            out_neighbors,
            edge_of_dense,
            out_edge_of,
            queues,
            outputs: vec![None; n],
            sent: vec![0; n],
            received: vec![0; n],
            sends: SendBuf::default(),
        }
    }

    /// The topology this engine simulates.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Clears all per-run state in place, keeping every allocation (link
    /// queues retain their capacity). Called automatically at the start of
    /// each [`Engine::run`]; exposed for callers that want a cleared engine
    /// between batches.
    pub fn reset(&mut self) {
        for q in &mut self.queues {
            q.clear();
        }
        self.outputs.fill(None);
        self.sent.fill(0);
        self.received.fill(0);
        self.sends.clear();
    }

    /// Runs one trial with the given step limit and no probe.
    ///
    /// `nodes[i]` is the behaviour of node `i`; `wakes` lists the
    /// spontaneously waking nodes in wake order. The engine is reset first
    /// (and the scheduler cleared), so back-to-back calls are independent
    /// trials.
    ///
    /// This is the boxed-clone convenience path: it allocates a fresh
    /// [`Execution`] per call. Batch aggregation should use
    /// [`Engine::run_into`] (or [`Engine::run_mono_into`]) with a reused
    /// out-parameter instead.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size.
    pub fn run(
        &mut self,
        nodes: &mut [Box<dyn Node<M> + '_>],
        wakes: &[NodeId],
        scheduler: &mut dyn Scheduler,
        step_limit: u64,
    ) -> Execution {
        let mut out = Execution::default();
        self.session_core(nodes, wakes, scheduler, step_limit, None, &mut out);
        out
    }

    /// [`Engine::run`] writing the result into a caller-owned
    /// [`Execution`] instead of allocating a fresh one.
    ///
    /// `out`'s buffers are cleared and refilled in place, so a worker that
    /// reuses one `Execution` across a batch performs zero per-trial
    /// allocation on this path.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size.
    pub fn run_into(
        &mut self,
        nodes: &mut [Box<dyn Node<M> + '_>],
        wakes: &[NodeId],
        scheduler: &mut dyn Scheduler,
        step_limit: u64,
        out: &mut Execution,
    ) {
        self.session_core(nodes, wakes, scheduler, step_limit, None, out);
    }

    /// [`Engine::run`] with an optional instrumentation probe.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size.
    pub fn run_session(
        &mut self,
        nodes: &mut [Box<dyn Node<M> + '_>],
        wakes: &[NodeId],
        scheduler: &mut dyn Scheduler,
        step_limit: u64,
        probe: Option<&mut dyn Probe<M>>,
    ) -> Execution {
        let mut out = Execution::default();
        self.session_core(nodes, wakes, scheduler, step_limit, probe, &mut out);
        out
    }

    /// The monomorphized honest fast path: like [`Engine::run`], but the
    /// node behaviours are a homogeneous `&mut [N]` — no `Box`, no vtable
    /// dispatch per activation, and the scheduler calls are statically
    /// dispatched too. The protocol crates' `run_honest_in` entries route
    /// through here; `Box<dyn Node>` remains available (via
    /// [`Engine::run`]) for heterogeneous protocol/attack mixes.
    ///
    /// Produces bit-identical [`Execution`]s to [`Engine::run`] over the
    /// equivalent boxed behaviours.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size.
    pub fn run_mono<N: Node<M>, S: Scheduler + ?Sized>(
        &mut self,
        nodes: &mut [N],
        wakes: &[NodeId],
        scheduler: &mut S,
        step_limit: u64,
    ) -> Execution {
        let mut out = Execution::default();
        self.session_core(nodes, wakes, scheduler, step_limit, None, &mut out);
        out
    }

    /// [`Engine::run_mono`] writing into a caller-owned [`Execution`] —
    /// the zero-allocation batch-trial entry point.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size.
    pub fn run_mono_into<N: Node<M>, S: Scheduler + ?Sized>(
        &mut self,
        nodes: &mut [N],
        wakes: &[NodeId],
        scheduler: &mut S,
        step_limit: u64,
        out: &mut Execution,
    ) {
        self.session_core(nodes, wakes, scheduler, step_limit, None, out);
    }

    /// The engine loop, generic over node storage and scheduler so the
    /// honest batch path monomorphizes end to end. Every public `run*`
    /// entry funnels here, which is what keeps the boxed and mono paths
    /// bit-identical by construction.
    fn session_core<N: Node<M>, S: Scheduler + ?Sized>(
        &mut self,
        nodes: &mut [N],
        wakes: &[NodeId],
        scheduler: &mut S,
        step_limit: u64,
        mut probe: Option<&mut dyn Probe<M>>,
        out: &mut Execution,
    ) {
        assert_eq!(nodes.len(), self.n, "need one behaviour per node");
        self.reset();
        scheduler.clear();

        let mut delivered = 0u64;
        let mut steps = 0u64;

        for &w in wakes {
            scheduler.push(Token::Wake(w));
        }

        let mut hit_limit = false;
        while let Some(token) = scheduler.pop() {
            if steps >= step_limit {
                hit_limit = true;
                break;
            }
            steps += 1;
            match token {
                Token::Wake(i) => {
                    if self.outputs[i].is_none() {
                        self.activate(nodes, i, None, scheduler, &mut probe);
                    }
                }
                Token::Deliver(edge) => {
                    let msg = self.queues[edge]
                        .pop_front()
                        .expect("token implies a queued message");
                    let (from, to) = self.topology.edges()[edge];
                    self.received[to] += 1;
                    delivered += 1;
                    if let Some(p) = probe.as_deref_mut() {
                        p.on_deliver(from, to, &msg, &self.received);
                    }
                    if self.outputs[to].is_none() {
                        self.activate(nodes, to, Some((from, msg)), scheduler, &mut probe);
                    }
                }
            }
        }

        out.outcome = outcome_of(&self.outputs, !hit_limit);
        out.outputs.clear();
        out.outputs.extend_from_slice(&self.outputs);
        out.stats.steps = steps;
        out.stats.delivered = delivered;
        out.stats.sent.clear();
        out.stats.sent.extend_from_slice(&self.sent);
        out.stats.received.clear();
        out.stats.received.extend_from_slice(&self.received);
    }

    /// Runs one activation of node `me` (a wake-up when `incoming` is
    /// `None`, a delivery otherwise) and applies its buffered actions:
    /// enqueue sends on their links, record a terminal output.
    ///
    /// The [`Ctx`] borrows the engine's persistent send buffer in place
    /// (disjoint-field borrows, no `mem::take` round-trip), so an
    /// activation costs no `SendBuf` copies — measurable at PhaseAsyncLead
    /// n=64, where one trial is 8k activations.
    #[inline]
    fn activate<N: Node<M>, S: Scheduler + ?Sized>(
        &mut self,
        nodes: &mut [N],
        me: NodeId,
        incoming: Option<(NodeId, M)>,
        scheduler: &mut S,
        probe: &mut Option<&mut dyn Probe<M>>,
    ) {
        let output = {
            let mut ctx = Ctx::new(me, &self.out_neighbors[me], &mut self.sends);
            match incoming {
                Some((from, msg)) => nodes[me].on_message(from, msg, &mut ctx),
                None => nodes[me].on_wake(&mut ctx),
            }
            ctx.output
        };
        // Split the engine into disjoint field borrows so the drain
        // closure can touch queues/sent/edge tables while `sends` is
        // mutably borrowed.
        let Engine {
            n,
            edge_of_dense,
            out_edge_of,
            queues,
            sent,
            sends,
            ..
        } = self;
        sends.drain_with(|to, msg| {
            let edge = edge_lookup(edge_of_dense, out_edge_of, *n, me, to);
            sent[me] += 1;
            if let Some(p) = probe.as_deref_mut() {
                p.on_send(me, to, &msg, sent);
            }
            queues[edge].push_back(msg);
            scheduler.push(Token::Deliver(edge));
        });
        if let Some(out) = output {
            self.outputs[me] = Some(out);
            if let Some(p) = probe.as_deref_mut() {
                p.on_terminate(me, out);
            }
        }
    }

    /// Resolves the edge id of the link `me → to` — O(1) through the dense
    /// table on every topology a sweep would use, linear scan beyond
    /// [`DENSE_EDGE_TABLE_MAX`].
    #[cfg(test)]
    fn edge_to(&self, me: NodeId, to: NodeId) -> EdgeId {
        edge_lookup(&self.edge_of_dense, &self.out_edge_of, self.n, me, to)
    }
}

/// The edge-resolution core shared by [`Engine::edge_to`] and the
/// borrow-split send drain in [`Engine::activate`].
#[inline]
fn edge_lookup(
    edge_of_dense: &[u32],
    out_edge_of: &[Vec<(NodeId, EdgeId)>],
    n: usize,
    me: NodeId,
    to: NodeId,
) -> EdgeId {
    if !edge_of_dense.is_empty() {
        let e = edge_of_dense[me * n + to];
        debug_assert_ne!(e, u32::MAX, "Ctx validated the link exists");
        e as EdgeId
    } else {
        out_edge_of[me]
            .iter()
            .find(|&&(t, _)| t == to)
            .map(|&(_, e)| e)
            .expect("Ctx validated the link exists")
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// The global outcome.
    pub outcome: Outcome,
    /// Per-node terminal outputs (`None` = never terminated,
    /// `Some(None)` = aborted with `⊥`, `Some(Some(v))` = output `v`).
    pub outputs: Vec<Option<Option<u64>>>,
    /// Counters gathered during the run.
    pub stats: Stats,
}

impl Default for Execution {
    /// A pre-run placeholder (failed outcome, empty buffers) intended as
    /// the out-parameter of [`Engine::run_into`] /
    /// [`Engine::run_mono_into`], which overwrite every field. Reusing one
    /// value across a batch keeps the buffers' capacity, so per-trial
    /// result extraction allocates nothing.
    fn default() -> Self {
        Execution {
            outcome: Outcome::Fail(FailReason::Deadlock),
            outputs: Vec::new(),
            stats: Stats::default(),
        }
    }
}

/// Execution counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total wake-ups plus deliveries processed.
    pub steps: u64,
    /// Total messages delivered.
    pub delivered: u64,
    /// Messages sent per node.
    pub sent: Vec<u64>,
    /// Messages received per node (including messages dropped because the
    /// receiver had terminated).
    pub received: Vec<u64>,
}

impl Stats {
    /// Total messages sent across all nodes.
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::FnNode;
    use crate::outcome::FailReason;
    use crate::scheduler::{LifoScheduler, RandomScheduler};
    use crate::Topology;

    /// Token-ring counter: origin starts a token; each node increments and
    /// forwards; everyone terminates with the value they saw at `3n`.
    fn token_ring(n: usize, scheduler: impl Scheduler + 'static) -> Execution {
        let target = 3 * n as u64;
        let mut b = SimBuilder::new(Topology::ring(n)).scheduler(scheduler);
        for i in 0..n {
            let node = FnNode::new(move |_from, m: u64, ctx: &mut Ctx<'_, u64>| {
                if m >= target {
                    if m < target + n as u64 - 1 {
                        ctx.send(m + 1);
                    }
                    ctx.terminate(Some(target));
                } else {
                    ctx.send(m + 1);
                }
            })
            .on_wake(move |ctx| {
                ctx.send(1);
            });
            if i == 0 {
                b = b.node(i, node);
            } else {
                b = b.node(
                    i,
                    FnNode::new(move |_from, m: u64, ctx: &mut Ctx<'_, u64>| {
                        if m >= target {
                            if m < target + n as u64 - 1 {
                                ctx.send(m + 1);
                            }
                            ctx.terminate(Some(target));
                        } else {
                            ctx.send(m + 1);
                        }
                    }),
                );
            }
        }
        b.wake(0).run()
    }

    #[test]
    fn token_ring_elects_target_under_fifo() {
        let exec = token_ring(5, FifoScheduler::new());
        assert_eq!(exec.outcome, Outcome::Elected(15));
    }

    #[test]
    fn token_ring_schedule_independent() {
        let fifo = token_ring(6, FifoScheduler::new());
        let lifo = token_ring(6, LifoScheduler::new());
        let rand = token_ring(6, RandomScheduler::new(99));
        assert_eq!(fifo.outcome, lifo.outcome);
        assert_eq!(fifo.outcome, rand.outcome);
    }

    #[test]
    fn silent_network_deadlocks() {
        let exec: Execution = SimBuilder::new(Topology::ring(2))
            .node(0, FnNode::new(|_, _: u64, _| {}))
            .node(1, FnNode::new(|_, _: u64, _| {}))
            .run();
        assert_eq!(exec.outcome, Outcome::Fail(FailReason::Deadlock));
    }

    #[test]
    fn infinite_chatter_hits_step_limit() {
        let exec: Execution = SimBuilder::new(Topology::ring(2))
            .node(
                0,
                FnNode::new(|_, m: u64, ctx: &mut Ctx<'_, u64>| ctx.send(m))
                    .on_wake(|ctx| ctx.send(0)),
            )
            .node(
                1,
                FnNode::new(|_, m: u64, ctx: &mut Ctx<'_, u64>| ctx.send(m)),
            )
            .wake(0)
            .step_limit(500)
            .run();
        assert_eq!(exec.outcome, Outcome::Fail(FailReason::StepLimit));
        assert_eq!(exec.stats.steps, 500);
    }

    #[test]
    fn messages_to_terminated_nodes_are_dropped() {
        // Node 1 terminates on first message; node 0 sends two.
        let exec: Execution = SimBuilder::new(Topology::ring(2))
            .node(
                0,
                FnNode::new(|_, _: u64, ctx: &mut Ctx<'_, u64>| ctx.terminate(Some(1))).on_wake(
                    |ctx| {
                        ctx.send(1);
                        ctx.send(2);
                        ctx.terminate(Some(1));
                    },
                ),
            )
            .node(
                1,
                FnNode::new(|_, _m: u64, ctx: &mut Ctx<'_, u64>| ctx.terminate(Some(1))),
            )
            .wake(0)
            .run();
        assert_eq!(exec.outcome, Outcome::Elected(1));
        assert_eq!(exec.stats.received[1], 2); // both counted, one dropped
    }

    #[test]
    fn fifo_link_order_is_preserved_even_under_lifo_scheduler() {
        // Node 0 sends 1, 2, 3 to node 1; node 1 records order.
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        let exec: Execution = SimBuilder::new(Topology::ring(2))
            .node(
                0,
                FnNode::new(|_, _: u64, _ctx: &mut Ctx<'_, u64>| {}).on_wake(|ctx| {
                    ctx.send(1);
                    ctx.send(2);
                    ctx.send(3);
                    ctx.terminate(Some(0));
                }),
            )
            .node(
                1,
                FnNode::new(move |_, m: u64, ctx: &mut Ctx<'_, u64>| {
                    seen2.borrow_mut().push(m);
                    if seen2.borrow().len() == 3 {
                        ctx.terminate(Some(0));
                    }
                }),
            )
            .wake(0)
            .scheduler(LifoScheduler::new())
            .run();
        assert_eq!(exec.outcome, Outcome::Elected(0));
        assert_eq!(*seen.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn stats_count_sends_and_receives() {
        let exec = token_ring(4, FifoScheduler::new());
        assert_eq!(exec.stats.total_sent(), exec.stats.delivered);
        assert!(exec.stats.sent.iter().all(|&s| s > 0));
    }

    #[test]
    #[should_panic(expected = "has no behaviour")]
    fn missing_node_panics() {
        let _ = SimBuilder::<u64>::new(Topology::ring(2))
            .node(0, FnNode::new(|_, _: u64, _| {}))
            .run();
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_node_panics() {
        let _ = SimBuilder::<u64>::new(Topology::ring(2))
            .node(0, FnNode::new(|_, _: u64, _| {}))
            .node(0, FnNode::new(|_, _: u64, _| {}));
    }

    /// Node set for [`token_ring`]-style runs through a reusable engine.
    fn counter_nodes(n: usize, target: u64) -> Vec<Box<dyn Node<u64>>> {
        (0..n)
            .map(|i| {
                let step = move |_f: usize, m: u64, ctx: &mut Ctx<'_, u64>| {
                    if m >= target {
                        if m < target + n as u64 - 1 {
                            ctx.send(m + 1);
                        }
                        ctx.terminate(Some(target));
                    } else {
                        ctx.send(m + 1);
                    }
                };
                if i == 0 {
                    Box::new(FnNode::new(step).on_wake(|ctx| ctx.send(1))) as Box<dyn Node<u64>>
                } else {
                    Box::new(FnNode::new(step)) as Box<dyn Node<u64>>
                }
            })
            .collect()
    }

    #[test]
    fn engine_reuse_matches_builder() {
        let n = 5;
        let target = 3 * n as u64;
        let via_builder = token_ring(n, FifoScheduler::new());
        let mut engine = Engine::new(Topology::ring(n));
        for _ in 0..3 {
            let mut nodes = counter_nodes(n, target);
            let exec = engine.run(
                &mut nodes,
                &[0],
                &mut FifoScheduler::new(),
                default_step_limit(n),
            );
            assert_eq!(exec, via_builder);
        }
    }

    #[test]
    fn engine_reset_clears_state() {
        let n = 4;
        let mut engine: Engine<u64> = Engine::new(Topology::ring(n));
        let mut nodes = counter_nodes(n, 3 * n as u64);
        let _ = engine.run(
            &mut nodes,
            &[0],
            &mut FifoScheduler::new(),
            default_step_limit(n),
        );
        engine.reset();
        assert!(engine.queues.iter().all(|q| q.is_empty()));
        assert!(engine.outputs.iter().all(|o| o.is_none()));
        assert!(engine.sent.iter().all(|&s| s == 0));
        assert!(engine.received.iter().all(|&r| r == 0));
    }

    #[test]
    #[should_panic(expected = "one behaviour per node")]
    fn engine_rejects_wrong_node_count() {
        let mut engine: Engine<u64> = Engine::new(Topology::ring(3));
        let mut nodes = counter_nodes(2, 6);
        let _ = engine.run(&mut nodes, &[0], &mut FifoScheduler::new(), 100);
    }

    /// A monomorphic token-ring counter node (no boxing) for the
    /// `run_mono` paths.
    struct Counter {
        n: u64,
        target: u64,
        wakes: bool,
    }

    impl Node<u64> for Counter {
        fn on_wake(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.wakes {
                ctx.send(1);
            }
        }

        fn on_message(&mut self, _from: usize, m: u64, ctx: &mut Ctx<'_, u64>) {
            if m >= self.target {
                if m < self.target + self.n - 1 {
                    ctx.send(m + 1);
                }
                ctx.terminate(Some(self.target));
            } else {
                ctx.send(m + 1);
            }
        }
    }

    fn mono_nodes(n: usize, target: u64) -> Vec<Counter> {
        (0..n)
            .map(|i| Counter {
                n: n as u64,
                target,
                wakes: i == 0,
            })
            .collect()
    }

    #[test]
    fn run_into_and_run_mono_match_run() {
        let n = 5;
        let target = 3 * n as u64;
        let mut engine = Engine::new(Topology::ring(n));
        let reference = engine.run(
            &mut counter_nodes(n, target),
            &[0],
            &mut FifoScheduler::new(),
            default_step_limit(n),
        );

        let mut reused = Execution::default();
        let mut scheduler = FifoScheduler::new();
        for _ in 0..3 {
            engine.run_into(
                &mut counter_nodes(n, target),
                &[0],
                &mut scheduler,
                default_step_limit(n),
                &mut reused,
            );
            assert_eq!(reused, reference);

            let mut mono = mono_nodes(n, target);
            let exec = engine.run_mono(&mut mono, &[0], &mut scheduler, default_step_limit(n));
            assert_eq!(exec, reference);

            engine.run_mono_into(
                &mut mono_nodes(n, target),
                &[0],
                &mut scheduler,
                default_step_limit(n),
                &mut reused,
            );
            assert_eq!(reused, reference);
        }
    }

    #[test]
    fn run_clears_a_dirty_scheduler() {
        // A stale token left over from an aborted run must not leak into
        // the next trial.
        let n = 4;
        let mut engine = Engine::new(Topology::ring(n));
        let mut scheduler = FifoScheduler::new();
        scheduler.push(Token::Wake(2));
        let exec = engine.run_mono(
            &mut mono_nodes(n, 3 * n as u64),
            &[0],
            &mut scheduler,
            default_step_limit(n),
        );
        assert_eq!(exec.outcome, Outcome::Elected(3 * n as u64));
    }

    #[test]
    fn dense_edge_table_matches_topology_lookup() {
        let topo = Topology::complete(6);
        let engine: Engine<u64> = Engine::new(topo.clone());
        assert!(!engine.edge_of_dense.is_empty());
        for a in 0..6 {
            for b in 0..6 {
                if a != b {
                    assert_eq!(engine.edge_to(a, b), topo.edge_id(a, b).unwrap());
                }
            }
        }
    }

    #[test]
    fn wake_all_wakes_everyone() {
        let exec: Execution = SimBuilder::new(Topology::ring(3))
            .node(
                0,
                FnNode::new(|_, _: u64, _| {}).on_wake(|ctx| ctx.terminate(Some(7))),
            )
            .node(
                1,
                FnNode::new(|_, _: u64, _| {}).on_wake(|ctx| ctx.terminate(Some(7))),
            )
            .node(
                2,
                FnNode::new(|_, _: u64, _| {}).on_wake(|ctx| ctx.terminate(Some(7))),
            )
            .wake_all()
            .run();
        assert_eq!(exec.outcome, Outcome::Elected(7));
    }
}
