//! The discrete-event execution engine.

use crate::node::{Ctx, Node};
use crate::outcome::{outcome_of, Outcome};
use crate::probe::Probe;
use crate::scheduler::{FifoScheduler, Scheduler, Token};
use crate::topology::{NodeId, Topology};
use std::collections::VecDeque;

/// Default step limit for a topology of `n` nodes: generous enough for any
/// protocol in this workspace (`A-LEADuni` delivers `n²` messages,
/// `PhaseAsyncLead` delivers `2n²`).
pub const DEFAULT_STEP_LIMIT: fn(usize) -> u64 = |n| 16 * (n as u64) * (n as u64) + 4096;

/// Builder wiring nodes, topology, wake-ups, scheduler and probe into one
/// runnable simulation.
///
/// # Examples
///
/// See the crate-level example. Typical protocol harnesses construct one
/// `SimBuilder` per trial:
///
/// ```
/// use ring_sim::{FnNode, RandomScheduler, SimBuilder, Topology};
///
/// let exec = SimBuilder::new(Topology::ring(3))
///     .node(0, FnNode::new(|_, m: u64, ctx: &mut ring_sim::Ctx<'_, u64>| {
///         ctx.terminate(Some(m));
///     })
///     .on_wake(|ctx| { ctx.send(9); ctx.terminate(Some(9)); }))
///     .node(1, FnNode::new(|_, m, ctx: &mut ring_sim::Ctx<'_, u64>| {
///         ctx.send(m);
///         ctx.terminate(Some(m));
///     }))
///     .node(2, FnNode::new(|_, m, ctx: &mut ring_sim::Ctx<'_, u64>| {
///         ctx.send(m);
///         ctx.terminate(Some(m));
///     }))
///     .wake(0)
///     .scheduler(RandomScheduler::new(1))
///     .run();
/// assert_eq!(exec.outcome.elected(), Some(9));
/// ```
pub struct SimBuilder<'p, M> {
    topology: Topology,
    nodes: Vec<Option<Box<dyn Node<M> + 'p>>>,
    wakes: Vec<NodeId>,
    scheduler: Box<dyn Scheduler + 'p>,
    step_limit: u64,
    probe: Option<&'p mut dyn Probe<M>>,
}

impl<'p, M> std::fmt::Debug for SimBuilder<'p, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBuilder")
            .field("topology", &self.topology)
            .field("wakes", &self.wakes)
            .field("step_limit", &self.step_limit)
            .finish_non_exhaustive()
    }
}

impl<'p, M> SimBuilder<'p, M> {
    /// Starts a builder for the given topology with the default FIFO
    /// scheduler and step limit.
    pub fn new(topology: Topology) -> Self {
        let n = topology.len();
        Self {
            topology,
            nodes: (0..n).map(|_| None).collect(),
            wakes: Vec::new(),
            scheduler: Box::new(FifoScheduler::new()),
            step_limit: DEFAULT_STEP_LIMIT(n),
            probe: None,
        }
    }

    /// Installs the behaviour of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already assigned.
    pub fn node(mut self, id: NodeId, node: impl Node<M> + 'p) -> Self {
        assert!(id < self.nodes.len(), "node id {id} out of range");
        assert!(self.nodes[id].is_none(), "node {id} assigned twice");
        self.nodes[id] = Some(Box::new(node));
        self
    }

    /// Installs a boxed behaviour of node `id` (for heterogeneous
    /// protocol/attack mixes built at runtime).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or already assigned.
    pub fn boxed_node(mut self, id: NodeId, node: Box<dyn Node<M> + 'p>) -> Self {
        assert!(id < self.nodes.len(), "node id {id} out of range");
        assert!(self.nodes[id].is_none(), "node {id} assigned twice");
        self.nodes[id] = Some(node);
        self
    }

    /// Schedules a spontaneous wake-up for `id` (wake-ups are scheduled
    /// like messages, so they interleave obliviously with deliveries).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn wake(mut self, id: NodeId) -> Self {
        assert!(id < self.nodes.len(), "wake id {id} out of range");
        self.wakes.push(id);
        self
    }

    /// Schedules wake-ups for every node, in id order.
    pub fn wake_all(mut self) -> Self {
        let n = self.nodes.len();
        self.wakes.extend(0..n);
        self
    }

    /// Replaces the default FIFO scheduler.
    pub fn scheduler(mut self, scheduler: impl Scheduler + 'p) -> Self {
        self.scheduler = Box::new(scheduler);
        self
    }

    /// Overrides the step limit (each wake-up or delivery is one step).
    pub fn step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Attaches an observation probe for this run.
    pub fn probe(mut self, probe: &'p mut dyn Probe<M>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Runs the simulation to completion and returns the [`Execution`].
    ///
    /// The run ends when all nodes have terminated, when no tokens remain
    /// (deadlock), or when the step limit is exceeded.
    ///
    /// This is the one-shot path: it builds a fresh [`Engine`] per call.
    /// Batch workloads that run many trials over the same topology should
    /// hold an [`Engine`] and call [`Engine::run`] directly to reuse its
    /// buffers.
    ///
    /// # Panics
    ///
    /// Panics if any node id was left without a behaviour — an incomplete
    /// wiring is a programming error.
    pub fn run(self) -> Execution {
        let SimBuilder {
            topology,
            nodes,
            wakes,
            mut scheduler,
            step_limit,
            probe,
        } = self;
        let mut nodes: Vec<Box<dyn Node<M> + 'p>> = nodes
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("node {i} has no behaviour")))
            .collect();
        let mut engine = Engine::new(topology);
        engine.run_session(&mut nodes, &wakes, &mut *scheduler, step_limit, probe)
    }
}

/// A reusable simulation engine for one fixed [`Topology`].
///
/// [`SimBuilder::run`] allocates the per-run working set — link queues,
/// adjacency tables, per-node counters — from scratch on every call. For a
/// Monte-Carlo sweep of many thousands of trials over the *same* topology
/// that churn dominates the runtime, so `Engine` keeps those buffers alive
/// across runs: [`Engine::run`] resets them in place (queue capacities are
/// retained) and executes a fresh set of node behaviours.
///
/// An `Engine` produces bit-identical [`Execution`]s to the equivalent
/// [`SimBuilder::run`] call — it is purely an allocation-reuse facility.
/// The `fle-harness` crate gives every worker thread its own `Engine`.
///
/// # Examples
///
/// ```
/// use ring_sim::{Ctx, Engine, FifoScheduler, FnNode, Node, Outcome, Topology};
///
/// let mut engine = Engine::new(Topology::ring(2));
/// for trial in 0..3u64 {
///     let mut nodes: Vec<Box<dyn Node<u64>>> = vec![
///         Box::new(
///             FnNode::new(|_, m: u64, ctx: &mut Ctx<'_, u64>| ctx.terminate(Some(m)))
///                 .on_wake(move |ctx| {
///                     ctx.send(trial);
///                     ctx.terminate(Some(trial));
///                 }),
///         ),
///         Box::new(FnNode::new(|_, m: u64, ctx: &mut Ctx<'_, u64>| {
///             ctx.terminate(Some(m));
///         })),
///     ];
///     let exec = engine.run(&mut nodes, &[0], &mut FifoScheduler::new(), 1000);
///     assert_eq!(exec.outcome, Outcome::Elected(trial));
/// }
/// ```
pub struct Engine<M> {
    topology: Topology,
    out_neighbors: Vec<Vec<NodeId>>,
    /// Per-node map from successor id to edge id (out-degrees are tiny,
    /// linear scan is fastest).
    out_edge_of: Vec<Vec<(NodeId, usize)>>,
    queues: Vec<VecDeque<M>>,
    outputs: Vec<Option<Option<u64>>>,
    sent: Vec<u64>,
    received: Vec<u64>,
}

impl<M> std::fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("topology", &self.topology)
            .finish_non_exhaustive()
    }
}

impl<M> Engine<M> {
    /// Creates an engine for `topology`, preallocating the working set.
    pub fn new(topology: Topology) -> Self {
        let n = topology.len();
        let out_neighbors: Vec<Vec<NodeId>> = (0..n).map(|i| topology.out_neighbors(i)).collect();
        let out_edge_of: Vec<Vec<(NodeId, usize)>> = (0..n)
            .map(|i| {
                topology
                    .out_edges(i)
                    .iter()
                    .map(|&e| (topology.edges()[e].1, e))
                    .collect()
            })
            .collect();
        let queues = (0..topology.edges().len())
            .map(|_| VecDeque::new())
            .collect();
        Self {
            topology,
            out_neighbors,
            out_edge_of,
            queues,
            outputs: vec![None; n],
            sent: vec![0; n],
            received: vec![0; n],
        }
    }

    /// The topology this engine simulates.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Clears all per-run state in place, keeping every allocation (link
    /// queues retain their capacity). Called automatically at the start of
    /// each [`Engine::run`]; exposed for callers that want a cleared engine
    /// between batches.
    pub fn reset(&mut self) {
        for q in &mut self.queues {
            q.clear();
        }
        self.outputs.fill(None);
        self.sent.fill(0);
        self.received.fill(0);
    }

    /// Runs one trial with the given step limit and no probe.
    ///
    /// `nodes[i]` is the behaviour of node `i`; `wakes` lists the
    /// spontaneously waking nodes in wake order. The engine is reset first,
    /// so back-to-back calls are independent trials.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size.
    pub fn run(
        &mut self,
        nodes: &mut [Box<dyn Node<M> + '_>],
        wakes: &[NodeId],
        scheduler: &mut dyn Scheduler,
        step_limit: u64,
    ) -> Execution {
        self.run_session(nodes, wakes, scheduler, step_limit, None)
    }

    /// [`Engine::run`] with an optional instrumentation probe.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size.
    pub fn run_session(
        &mut self,
        nodes: &mut [Box<dyn Node<M> + '_>],
        wakes: &[NodeId],
        scheduler: &mut dyn Scheduler,
        step_limit: u64,
        mut probe: Option<&mut dyn Probe<M>>,
    ) -> Execution {
        let n = self.topology.len();
        assert_eq!(nodes.len(), n, "need one behaviour per node");
        self.reset();

        let mut delivered = 0u64;
        let mut steps = 0u64;

        for &w in wakes {
            scheduler.push(Token::Wake(w));
        }

        let mut hit_limit = false;
        while let Some(token) = scheduler.pop() {
            if steps >= step_limit {
                hit_limit = true;
                break;
            }
            steps += 1;
            match token {
                Token::Wake(i) => {
                    if self.outputs[i].is_none() {
                        let mut ctx = Ctx::new(i, &self.out_neighbors[i]);
                        nodes[i].on_wake(&mut ctx);
                        let Ctx { sends, output, .. } = ctx;
                        self.apply(i, sends, output, scheduler, &mut probe);
                    }
                }
                Token::Deliver(edge) => {
                    let msg = self.queues[edge]
                        .pop_front()
                        .expect("token implies a queued message");
                    let (from, to) = self.topology.edges()[edge];
                    self.received[to] += 1;
                    delivered += 1;
                    if let Some(p) = probe.as_deref_mut() {
                        p.on_deliver(from, to, &msg, &self.received);
                    }
                    if self.outputs[to].is_none() {
                        let mut ctx = Ctx::new(to, &self.out_neighbors[to]);
                        nodes[to].on_message(from, msg, &mut ctx);
                        let Ctx { sends, output, .. } = ctx;
                        self.apply(to, sends, output, scheduler, &mut probe);
                    }
                }
            }
        }

        let outcome = outcome_of(&self.outputs, !hit_limit);
        Execution {
            outcome,
            outputs: self.outputs.clone(),
            stats: Stats {
                steps,
                delivered,
                sent: self.sent.clone(),
                received: self.received.clone(),
            },
        }
    }

    /// Applies the buffered actions of one activation: enqueue sends on
    /// their links, record a terminal output.
    fn apply(
        &mut self,
        me: NodeId,
        sends: Vec<(NodeId, M)>,
        output: Option<Option<u64>>,
        scheduler: &mut dyn Scheduler,
        probe: &mut Option<&mut dyn Probe<M>>,
    ) {
        for (to, msg) in sends {
            let edge = self.out_edge_of[me]
                .iter()
                .find(|&&(t, _)| t == to)
                .map(|&(_, e)| e)
                .expect("Ctx validated the link exists");
            self.sent[me] += 1;
            if let Some(p) = probe.as_deref_mut() {
                p.on_send(me, to, &msg, &self.sent);
            }
            self.queues[edge].push_back(msg);
            scheduler.push(Token::Deliver(edge));
        }
        if let Some(out) = output {
            self.outputs[me] = Some(out);
            if let Some(p) = probe.as_deref_mut() {
                p.on_terminate(me, out);
            }
        }
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// The global outcome.
    pub outcome: Outcome,
    /// Per-node terminal outputs (`None` = never terminated,
    /// `Some(None)` = aborted with `⊥`, `Some(Some(v))` = output `v`).
    pub outputs: Vec<Option<Option<u64>>>,
    /// Counters gathered during the run.
    pub stats: Stats,
}

/// Execution counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stats {
    /// Total wake-ups plus deliveries processed.
    pub steps: u64,
    /// Total messages delivered.
    pub delivered: u64,
    /// Messages sent per node.
    pub sent: Vec<u64>,
    /// Messages received per node (including messages dropped because the
    /// receiver had terminated).
    pub received: Vec<u64>,
}

impl Stats {
    /// Total messages sent across all nodes.
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::FnNode;
    use crate::outcome::FailReason;
    use crate::scheduler::{LifoScheduler, RandomScheduler};
    use crate::Topology;

    /// Token-ring counter: origin starts a token; each node increments and
    /// forwards; everyone terminates with the value they saw at `3n`.
    fn token_ring(n: usize, scheduler: impl Scheduler + 'static) -> Execution {
        let target = 3 * n as u64;
        let mut b = SimBuilder::new(Topology::ring(n)).scheduler(scheduler);
        for i in 0..n {
            let node = FnNode::new(move |_from, m: u64, ctx: &mut Ctx<'_, u64>| {
                if m >= target {
                    if m < target + n as u64 - 1 {
                        ctx.send(m + 1);
                    }
                    ctx.terminate(Some(target));
                } else {
                    ctx.send(m + 1);
                }
            })
            .on_wake(move |ctx| {
                ctx.send(1);
            });
            if i == 0 {
                b = b.node(i, node);
            } else {
                b = b.node(
                    i,
                    FnNode::new(move |_from, m: u64, ctx: &mut Ctx<'_, u64>| {
                        if m >= target {
                            if m < target + n as u64 - 1 {
                                ctx.send(m + 1);
                            }
                            ctx.terminate(Some(target));
                        } else {
                            ctx.send(m + 1);
                        }
                    }),
                );
            }
        }
        b.wake(0).run()
    }

    #[test]
    fn token_ring_elects_target_under_fifo() {
        let exec = token_ring(5, FifoScheduler::new());
        assert_eq!(exec.outcome, Outcome::Elected(15));
    }

    #[test]
    fn token_ring_schedule_independent() {
        let fifo = token_ring(6, FifoScheduler::new());
        let lifo = token_ring(6, LifoScheduler::new());
        let rand = token_ring(6, RandomScheduler::new(99));
        assert_eq!(fifo.outcome, lifo.outcome);
        assert_eq!(fifo.outcome, rand.outcome);
    }

    #[test]
    fn silent_network_deadlocks() {
        let exec: Execution = SimBuilder::new(Topology::ring(2))
            .node(0, FnNode::new(|_, _: u64, _| {}))
            .node(1, FnNode::new(|_, _: u64, _| {}))
            .run();
        assert_eq!(exec.outcome, Outcome::Fail(FailReason::Deadlock));
    }

    #[test]
    fn infinite_chatter_hits_step_limit() {
        let exec: Execution = SimBuilder::new(Topology::ring(2))
            .node(
                0,
                FnNode::new(|_, m: u64, ctx: &mut Ctx<'_, u64>| ctx.send(m))
                    .on_wake(|ctx| ctx.send(0)),
            )
            .node(
                1,
                FnNode::new(|_, m: u64, ctx: &mut Ctx<'_, u64>| ctx.send(m)),
            )
            .wake(0)
            .step_limit(500)
            .run();
        assert_eq!(exec.outcome, Outcome::Fail(FailReason::StepLimit));
        assert_eq!(exec.stats.steps, 500);
    }

    #[test]
    fn messages_to_terminated_nodes_are_dropped() {
        // Node 1 terminates on first message; node 0 sends two.
        let exec: Execution = SimBuilder::new(Topology::ring(2))
            .node(
                0,
                FnNode::new(|_, _: u64, ctx: &mut Ctx<'_, u64>| ctx.terminate(Some(1))).on_wake(
                    |ctx| {
                        ctx.send(1);
                        ctx.send(2);
                        ctx.terminate(Some(1));
                    },
                ),
            )
            .node(
                1,
                FnNode::new(|_, _m: u64, ctx: &mut Ctx<'_, u64>| ctx.terminate(Some(1))),
            )
            .wake(0)
            .run();
        assert_eq!(exec.outcome, Outcome::Elected(1));
        assert_eq!(exec.stats.received[1], 2); // both counted, one dropped
    }

    #[test]
    fn fifo_link_order_is_preserved_even_under_lifo_scheduler() {
        // Node 0 sends 1, 2, 3 to node 1; node 1 records order.
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        let exec: Execution = SimBuilder::new(Topology::ring(2))
            .node(
                0,
                FnNode::new(|_, _: u64, _ctx: &mut Ctx<'_, u64>| {}).on_wake(|ctx| {
                    ctx.send(1);
                    ctx.send(2);
                    ctx.send(3);
                    ctx.terminate(Some(0));
                }),
            )
            .node(
                1,
                FnNode::new(move |_, m: u64, ctx: &mut Ctx<'_, u64>| {
                    seen2.borrow_mut().push(m);
                    if seen2.borrow().len() == 3 {
                        ctx.terminate(Some(0));
                    }
                }),
            )
            .wake(0)
            .scheduler(LifoScheduler::new())
            .run();
        assert_eq!(exec.outcome, Outcome::Elected(0));
        assert_eq!(*seen.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn stats_count_sends_and_receives() {
        let exec = token_ring(4, FifoScheduler::new());
        assert_eq!(exec.stats.total_sent(), exec.stats.delivered);
        assert!(exec.stats.sent.iter().all(|&s| s > 0));
    }

    #[test]
    #[should_panic(expected = "has no behaviour")]
    fn missing_node_panics() {
        let _ = SimBuilder::<u64>::new(Topology::ring(2))
            .node(0, FnNode::new(|_, _: u64, _| {}))
            .run();
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_node_panics() {
        let _ = SimBuilder::<u64>::new(Topology::ring(2))
            .node(0, FnNode::new(|_, _: u64, _| {}))
            .node(0, FnNode::new(|_, _: u64, _| {}));
    }

    /// Node set for [`token_ring`]-style runs through a reusable engine.
    fn counter_nodes(n: usize, target: u64) -> Vec<Box<dyn Node<u64>>> {
        (0..n)
            .map(|i| {
                let step = move |_f: usize, m: u64, ctx: &mut Ctx<'_, u64>| {
                    if m >= target {
                        if m < target + n as u64 - 1 {
                            ctx.send(m + 1);
                        }
                        ctx.terminate(Some(target));
                    } else {
                        ctx.send(m + 1);
                    }
                };
                if i == 0 {
                    Box::new(FnNode::new(step).on_wake(|ctx| ctx.send(1))) as Box<dyn Node<u64>>
                } else {
                    Box::new(FnNode::new(step)) as Box<dyn Node<u64>>
                }
            })
            .collect()
    }

    #[test]
    fn engine_reuse_matches_builder() {
        let n = 5;
        let target = 3 * n as u64;
        let via_builder = token_ring(n, FifoScheduler::new());
        let mut engine = Engine::new(Topology::ring(n));
        for _ in 0..3 {
            let mut nodes = counter_nodes(n, target);
            let exec = engine.run(
                &mut nodes,
                &[0],
                &mut FifoScheduler::new(),
                DEFAULT_STEP_LIMIT(n),
            );
            assert_eq!(exec, via_builder);
        }
    }

    #[test]
    fn engine_reset_clears_state() {
        let n = 4;
        let mut engine: Engine<u64> = Engine::new(Topology::ring(n));
        let mut nodes = counter_nodes(n, 3 * n as u64);
        let _ = engine.run(
            &mut nodes,
            &[0],
            &mut FifoScheduler::new(),
            DEFAULT_STEP_LIMIT(n),
        );
        engine.reset();
        assert!(engine.queues.iter().all(|q| q.is_empty()));
        assert!(engine.outputs.iter().all(|o| o.is_none()));
        assert!(engine.sent.iter().all(|&s| s == 0));
        assert!(engine.received.iter().all(|&r| r == 0));
    }

    #[test]
    #[should_panic(expected = "one behaviour per node")]
    fn engine_rejects_wrong_node_count() {
        let mut engine: Engine<u64> = Engine::new(Topology::ring(3));
        let mut nodes = counter_nodes(2, 6);
        let _ = engine.run(&mut nodes, &[0], &mut FifoScheduler::new(), 100);
    }

    #[test]
    fn wake_all_wakes_everyone() {
        let exec: Execution = SimBuilder::new(Topology::ring(3))
            .node(
                0,
                FnNode::new(|_, _: u64, _| {}).on_wake(|ctx| ctx.terminate(Some(7))),
            )
            .node(
                1,
                FnNode::new(|_, _: u64, _| {}).on_wake(|ctx| ctx.terminate(Some(7))),
            )
            .node(
                2,
                FnNode::new(|_, _: u64, _| {}).on_wake(|ctx| ctx.terminate(Some(7))),
            )
            .wake_all()
            .run();
        assert_eq!(exec.outcome, Outcome::Elected(7));
    }
}
