//! Per-link FIFO message storage for the engine.
//!
//! The engine used to keep one `VecDeque<M>` per link: n scattered heap
//! buffers plus per-delivery wrap/bounds machinery, the dominant cost of
//! the hot loop after PR 4 (~25 ns/delivery on the reference container).
//! [`LinkSlab`] flattens all link queues into **one** contiguous slab —
//! every link owns a power-of-two segment addressed by shift/mask
//! arithmetic, with per-link `head`/`len` cursors in two dense arrays —
//! the flat per-flow queue shape discrete-event simulators use.
//!
//! The slab engages for topologies where every node has exactly one
//! incoming link (unidirectional rings — the paper's Sections 3–6 model
//! and every sweep workload); general topologies keep the `VecDeque`
//! fallback. Both implement [`LinkQueues`], and the engine loop is generic
//! over it, so each path monomorphizes with zero per-delivery dispatch.

use crate::topology::EdgeId;
use std::collections::VecDeque;

/// Per-link FIFO storage, as the engine loop sees it. Implemented by the
/// ring-specialized [`LinkSlab`] and by the general-topology
/// `Vec<VecDeque<M>>` fallback.
pub(crate) trait LinkQueues<M> {
    /// Enqueues `msg` at the back of `link`'s queue.
    fn push(&mut self, link: EdgeId, msg: M);

    /// Dequeues the front message of `link`.
    ///
    /// # Panics
    ///
    /// Panics if the link is empty — the engine's `Deliver` token
    /// invariant guarantees a queued message.
    fn pop(&mut self, link: EdgeId) -> M;

    /// Drops every message still queued on `link` and resets its cursors.
    fn clear_link(&mut self, link: EdgeId);
}

impl<M> LinkQueues<M> for Vec<VecDeque<M>> {
    #[inline]
    fn push(&mut self, link: EdgeId, msg: M) {
        self[link].push_back(msg);
    }

    #[inline]
    fn pop(&mut self, link: EdgeId) -> M {
        self[link]
            .pop_front()
            .expect("token implies a queued message")
    }

    #[inline]
    fn clear_link(&mut self, link: EdgeId) {
        self[link].clear();
    }
}

/// One link's queue cursors: the offset of its front message within its
/// segment and the number of live slots. One 8-byte struct per link, so a
/// push or pop touches exactly one bounds-checked cursor slot.
#[derive(Debug, Clone, Copy, Default)]
struct Cursor {
    head: u32,
    len: u32,
}

/// All link queues of one topology flattened into a single slab.
///
/// Link `e` owns slots `e << cap_shift .. (e + 1) << cap_shift` of `data`
/// as a circular segment: its front message sits at offset
/// `cursor[e].head & (cap - 1)` and `cursor[e].len` slots are live. Slots
/// hold `Option<M>` so messages move out of the slab by `take()` in safe
/// Rust. When any link outgrows the uniform per-link capacity the whole
/// slab doubles (out of line, amortized — an engine reaches its
/// high-water mark in the first trials of a batch and never grows again).
#[derive(Debug)]
pub(crate) struct LinkSlab<M> {
    data: Vec<Option<M>>,
    cursors: Vec<Cursor>,
    /// Per-link capacity is `1 << cap_shift` slots.
    cap_shift: u32,
}

/// Initial per-link capacity: `1 << INITIAL_SHIFT` slots. Honest ring
/// protocols keep at most a couple of messages in flight per link;
/// bursty deviators (rushing coalitions) trigger one or two doublings.
const INITIAL_SHIFT: u32 = 2;

impl<M> LinkSlab<M> {
    /// Creates a slab for `links` links, each with the initial capacity.
    pub(crate) fn new(links: usize) -> Self {
        let mut data = Vec::new();
        data.resize_with(links << INITIAL_SHIFT, || None);
        Self {
            data,
            cursors: vec![Cursor::default(); links],
            cap_shift: INITIAL_SHIFT,
        }
    }

    /// `true` when no link holds a message (test/oracle helper).
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.cursors.iter().all(|c| c.len == 0)
    }

    /// The uniform per-link capacity, in messages.
    pub(crate) fn per_link_capacity(&self) -> usize {
        1usize << self.cap_shift
    }

    /// Shrinks the per-link capacity back toward `per_link` messages
    /// (rounded up to a power of two, floored at the initial capacity) —
    /// the engine's shrink-on-idle reset calls this once all links are
    /// empty, so one bursty trial cannot pin its peak slab forever.
    ///
    /// No-op unless every link is empty and the budget is below the
    /// current capacity.
    pub(crate) fn shrink_to_budget(&mut self, per_link: usize) {
        let target_shift = per_link
            .next_power_of_two()
            .trailing_zeros()
            .max(INITIAL_SHIFT);
        if target_shift >= self.cap_shift || self.cursors.iter().any(|c| c.len != 0) {
            return;
        }
        let links = self.cursors.len();
        self.data = Vec::new(); // release the large buffer before reallocating
        self.data.resize_with(links << target_shift, || None);
        self.cap_shift = target_shift;
    }

    /// The full-segment slow path of [`LinkQueues::push`]: doubles the
    /// slab, then retries (which cannot hit the full branch again).
    #[cold]
    fn grow_and_push(&mut self, link: EdgeId, msg: M) {
        self.grow();
        self.push(link, msg);
    }

    /// Doubles every link's segment, re-linearizing live messages to the
    /// front of their new segment.
    #[cold]
    fn grow(&mut self) {
        let links = self.cursors.len();
        let old_shift = self.cap_shift;
        let old_mask = (1u32 << old_shift) - 1;
        let new_shift = old_shift + 1;
        let mut data: Vec<Option<M>> = Vec::new();
        data.resize_with(links << new_shift, || None);
        for link in 0..links {
            let c = &mut self.cursors[link];
            for i in 0..c.len {
                let old_idx = (link << old_shift) + ((c.head + i) & old_mask) as usize;
                data[(link << new_shift) + i as usize] = self.data[old_idx].take();
            }
            c.head = 0;
        }
        self.data = data;
        self.cap_shift = new_shift;
    }
}

impl<M> LinkQueues<M> for LinkSlab<M> {
    #[inline(always)]
    fn push(&mut self, link: EdgeId, msg: M) {
        let shift = self.cap_shift;
        let mask = (1u32 << shift) - 1;
        let c = &mut self.cursors[link];
        if c.len > mask {
            return self.grow_and_push(link, msg);
        }
        let slot = (c.head + c.len) & mask;
        c.len += 1;
        self.data[(link << shift) + slot as usize] = Some(msg);
    }

    #[inline(always)]
    fn pop(&mut self, link: EdgeId) -> M {
        let shift = self.cap_shift;
        let mask = (1u32 << shift) - 1;
        let c = &mut self.cursors[link];
        let head = c.head;
        c.head = (head + 1) & mask;
        c.len -= 1;
        self.data[(link << shift) + head as usize]
            .take()
            .expect("token implies a queued message")
    }

    #[inline]
    fn clear_link(&mut self, link: EdgeId) {
        let shift = self.cap_shift;
        let mask = (1u32 << shift) - 1;
        let c = self.cursors[link];
        for i in 0..c.len {
            self.data[(link << shift) + ((c.head + i) & mask) as usize] = None;
        }
        self.cursors[link] = Cursor::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_is_fifo_per_link() {
        let mut slab: LinkSlab<u64> = LinkSlab::new(3);
        for v in 0..3 {
            slab.push(1, v);
            slab.push(2, 10 + v);
        }
        assert_eq!(slab.pop(1), 0);
        assert_eq!(slab.pop(2), 10);
        assert_eq!(slab.pop(1), 1);
        assert_eq!(slab.pop(1), 2);
        assert_eq!(slab.pop(2), 11);
        assert_eq!(slab.pop(2), 12);
        assert!(slab.is_empty());
    }

    #[test]
    fn slab_grows_past_initial_capacity_preserving_order() {
        // Wrap the segment first (head away from 0), then burst far past
        // the initial capacity: order must survive grow's re-linearize.
        let mut slab: LinkSlab<u64> = LinkSlab::new(2);
        slab.push(0, 100);
        slab.push(0, 101);
        assert_eq!(slab.pop(0), 100);
        assert_eq!(slab.pop(0), 101);
        for v in 0..40 {
            slab.push(0, v);
            slab.push(1, 1000 + v);
        }
        for v in 0..40 {
            assert_eq!(slab.pop(0), v);
            assert_eq!(slab.pop(1), 1000 + v);
        }
        assert!(slab.is_empty());
    }

    #[test]
    fn clear_link_drops_leftovers_and_resets_cursors() {
        let mut slab: LinkSlab<u64> = LinkSlab::new(2);
        slab.push(0, 1);
        slab.push(0, 2);
        slab.push(1, 9);
        slab.clear_link(0);
        assert_eq!(slab.pop(1), 9);
        assert!(slab.is_empty());
        // A cleared link starts fresh.
        slab.push(0, 7);
        assert_eq!(slab.pop(0), 7);
    }

    #[test]
    fn vecdeque_fallback_matches_contract() {
        let mut q: Vec<VecDeque<u64>> = (0..2).map(|_| VecDeque::new()).collect();
        LinkQueues::push(&mut q, 0, 5);
        LinkQueues::push(&mut q, 0, 6);
        assert_eq!(LinkQueues::pop(&mut q, 0), 5);
        LinkQueues::clear_link(&mut q, 0);
        assert!(q[0].is_empty());
        LinkQueues::push(&mut q, 0, 7);
        assert_eq!(LinkQueues::pop(&mut q, 0), 7);
    }
}
