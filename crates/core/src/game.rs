//! Game-theoretic layer: rational utilities, bias, and the
//! resilience ⇄ unbias translation (paper Definitions 2.1–2.3, Lemma 2.4).

use ring_sim::Outcome;

/// A rational utility function over outcomes (paper Definition 2.1):
/// `u : [n] ∪ {FAIL} → [0, 1]` with `u(FAIL) = 0` — the solution-preference
/// assumption.
///
/// # Examples
///
/// ```
/// use fle_core::game::RationalUtility;
/// use ring_sim::{FailReason, Outcome};
///
/// let u = RationalUtility::indicator(4, 2);
/// assert_eq!(u.of(Outcome::Elected(2)), 1.0);
/// assert_eq!(u.of(Outcome::Elected(0)), 0.0);
/// assert_eq!(u.of(Outcome::Fail(FailReason::Abort)), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RationalUtility {
    per_leader: Vec<f64>,
}

impl RationalUtility {
    /// Builds a utility from per-leader values.
    ///
    /// # Panics
    ///
    /// Panics if any value is outside `[0, 1]` or the vector is empty.
    pub fn new(per_leader: Vec<f64>) -> Self {
        assert!(!per_leader.is_empty(), "utility needs at least one outcome");
        assert!(
            per_leader.iter().all(|&v| (0.0..=1.0).contains(&v)),
            "utilities must lie in [0, 1]"
        );
        Self { per_leader }
    }

    /// The utility `1[j = favourite]` used in the proof of Lemma 2.4: an
    /// adversary that wants exactly `favourite` elected.
    pub fn indicator(n: usize, favourite: usize) -> Self {
        assert!(favourite < n, "favourite {favourite} out of range {n}");
        let mut v = vec![0.0; n];
        v[favourite] = 1.0;
        Self { per_leader: v }
    }

    /// Utility of a single outcome. `FAIL` (and out-of-range leaders) are
    /// worth 0.
    pub fn of(&self, outcome: Outcome) -> f64 {
        match outcome {
            Outcome::Elected(j) => self.per_leader.get(j as usize).copied().unwrap_or(0.0),
            Outcome::Fail(_) => 0.0,
        }
    }

    /// Expected utility over an empirical outcome sample.
    pub fn expected<'a>(&self, outcomes: impl IntoIterator<Item = &'a Outcome>) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for o in outcomes {
            total += self.of(*o);
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// Empirical bias of an outcome sample: how far the most likely leader's
/// frequency exceeds the fair share `1/n`.
///
/// A protocol is `ε`-`k`-unbiased when no deviation can push any leader's
/// probability above `1/n + ε`; this measures the sample analogue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasEstimate {
    /// Number of trials.
    pub trials: usize,
    /// Number of trials with outcome `FAIL`.
    pub failures: usize,
    /// The leader elected most often, if any trial succeeded.
    pub mode: Option<u64>,
    /// Frequency of the modal leader among **all** trials.
    pub mode_freq: f64,
    /// `mode_freq − 1/n`, the empirical `ε`.
    pub epsilon: f64,
}

/// Estimates the bias of a sample of outcomes for a ring of size `n`.
///
/// # Examples
///
/// ```
/// use fle_core::game::estimate_bias;
/// use ring_sim::Outcome;
///
/// let sample = vec![Outcome::Elected(3); 10];
/// let b = estimate_bias(4, &sample);
/// assert_eq!(b.mode, Some(3));
/// assert!((b.epsilon - 0.75).abs() < 1e-9);
/// ```
pub fn estimate_bias(n: usize, outcomes: &[Outcome]) -> BiasEstimate {
    let mut counts = vec![0usize; n];
    let mut failures = 0usize;
    for o in outcomes {
        match o {
            Outcome::Elected(j) if (*j as usize) < n => counts[*j as usize] += 1,
            Outcome::Elected(_) => failures += 1, // out-of-range output is junk
            Outcome::Fail(_) => failures += 1,
        }
    }
    let trials = outcomes.len();
    let (mode, &max) = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .expect("n >= 1");
    let mode_freq = if trials == 0 {
        0.0
    } else {
        max as f64 / trials as f64
    };
    BiasEstimate {
        trials,
        failures,
        mode: if max > 0 { Some(mode as u64) } else { None },
        mode_freq,
        epsilon: mode_freq - 1.0 / n as f64,
    }
}

/// Probability that a *specific* target `w` was elected in the sample —
/// the quantity attacks try to push to 1.
pub fn target_rate(target: u64, outcomes: &[Outcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    let hits = outcomes
        .iter()
        .filter(|o| o.elected() == Some(target))
        .count();
    hits as f64 / outcomes.len() as f64
}

/// Lemma 2.4, first direction: an `ε`-`k`-resilient FLE protocol is
/// `ε`-`k`-unbiased. Given a resilience `ε`, this is the implied unbias.
pub fn unbias_from_resilience(epsilon: f64) -> f64 {
    epsilon
}

/// Lemma 2.4, second direction: an `ε`-`k`-unbiased FLE protocol is
/// `(nε)`-`k`-resilient.
pub fn resilience_from_unbias(epsilon: f64, n: usize) -> f64 {
    n as f64 * epsilon
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_sim::FailReason;

    #[test]
    fn indicator_utility_values() {
        let u = RationalUtility::indicator(5, 4);
        assert_eq!(u.of(Outcome::Elected(4)), 1.0);
        assert_eq!(u.of(Outcome::Elected(3)), 0.0);
        assert_eq!(u.of(Outcome::Fail(FailReason::Deadlock)), 0.0);
        assert_eq!(u.of(Outcome::Elected(99)), 0.0);
    }

    #[test]
    fn expected_utility_averages() {
        let u = RationalUtility::indicator(2, 1);
        let sample = vec![
            Outcome::Elected(1),
            Outcome::Elected(0),
            Outcome::Fail(FailReason::Abort),
            Outcome::Elected(1),
        ];
        assert!((u.expected(&sample) - 0.5).abs() < 1e-12);
        assert_eq!(u.expected(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "must lie in")]
    fn utility_out_of_range_panics() {
        let _ = RationalUtility::new(vec![0.2, 1.5]);
    }

    #[test]
    fn bias_of_uniform_sample_is_small() {
        let n = 8;
        let outcomes: Vec<Outcome> = (0..8000).map(|i| Outcome::Elected(i % 8)).collect();
        let b = estimate_bias(n, &outcomes);
        assert_eq!(b.failures, 0);
        assert!(b.epsilon.abs() < 1e-9);
    }

    #[test]
    fn bias_counts_failures() {
        let outcomes = vec![
            Outcome::Fail(FailReason::Abort),
            Outcome::Elected(1),
            Outcome::Elected(1),
        ];
        let b = estimate_bias(4, &outcomes);
        assert_eq!(b.failures, 1);
        assert_eq!(b.mode, Some(1));
        assert!((b.mode_freq - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_fail_sample_has_no_mode() {
        let outcomes = vec![Outcome::Fail(FailReason::Abort); 5];
        let b = estimate_bias(4, &outcomes);
        assert_eq!(b.mode, None);
        assert_eq!(b.failures, 5);
    }

    #[test]
    fn target_rate_counts_only_target() {
        let outcomes = vec![
            Outcome::Elected(2),
            Outcome::Elected(2),
            Outcome::Elected(1),
            Outcome::Fail(FailReason::Abort),
        ];
        assert!((target_rate(2, &outcomes) - 0.5).abs() < 1e-12);
        assert_eq!(target_rate(7, &outcomes), 0.0);
        assert_eq!(target_rate(7, &[]), 0.0);
    }

    #[test]
    fn lemma_2_4_translations() {
        assert_eq!(unbias_from_resilience(0.01), 0.01);
        assert_eq!(resilience_from_unbias(0.01, 100), 1.0);
    }
}
