//! Fair renaming for rational agents — the third building block Afek et
//! al. \[5\] derive from knowledge sharing, reproduced here on top of the
//! ring FLE protocols and the Section 8 reduction machinery.
//!
//! A *fair renaming* assigns every processor a distinct new name in
//! `[0, n)` such that no coalition can bias the distribution of any
//! processor's name. Two strengths are provided:
//!
//! * [`rotation_renaming`] — one election: the elected value `S` defines
//!   `name_i = (i + S) mod n`. Names are distinct and every individual
//!   processor's name is uniform over `[0, n)` (marginal fairness), but
//!   names are correlated — the scheme costs exactly one election.
//! * [`permutation_renaming`] — a uniformly random *permutation* of the
//!   names, built from unbiased bits extracted from independent elections
//!   (FLE → coin-toss direction of Theorem 8.1) and consumed by a
//!   rejection-sampled Fisher–Yates shuffle. Costs `Θ(log n!)` bits ≈
//!   `n log n` coin tosses, each `⌊log₂ n⌋` of which come from one
//!   election on a power-of-two subring.
//!
//! Both inherit their resilience from the underlying FLE protocol: a
//! coalition that cannot bias the elections cannot bias the names.

use crate::protocols::{FleProtocol, PhaseAsyncLead};
use ring_sim::Outcome;

/// Why a renaming attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenamingError {
    /// An underlying election failed (some processor aborted).
    ElectionFailed {
        /// The 0-based index of the failed election.
        round: usize,
    },
    /// The bit budget ran out before the shuffle finished (pathological
    /// rejection streak; retry with more elections).
    OutOfEntropy,
}

impl std::fmt::Display for RenamingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RenamingError::ElectionFailed { round } => {
                write!(f, "underlying election {round} failed")
            }
            RenamingError::OutOfEntropy => write!(f, "ran out of election-derived entropy"),
        }
    }
}

impl std::error::Error for RenamingError {}

/// A completed renaming: `names[i]` is processor `i`'s new name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Renaming {
    /// The assigned names, a permutation of `0..n`.
    pub names: Vec<usize>,
    /// How many elections were run to produce it.
    pub elections: usize,
}

impl Renaming {
    /// `true` iff the names are a permutation of `0..n` (the safety
    /// property of renaming).
    pub fn is_valid(&self) -> bool {
        let n = self.names.len();
        let mut seen = vec![false; n];
        self.names.iter().all(|&x| {
            if x < n && !seen[x] {
                seen[x] = true;
                true
            } else {
                false
            }
        })
    }
}

/// Rotation renaming on a `PhaseAsyncLead` ring: one election, names
/// `(i + S) mod n`.
///
/// # Errors
///
/// [`RenamingError::ElectionFailed`] if the election fails (only possible
/// under deviation).
///
/// # Examples
///
/// ```
/// use fle_core::renaming::rotation_renaming;
///
/// let renaming = rotation_renaming(8, 42)?;
/// assert!(renaming.is_valid());
/// assert_eq!(renaming.elections, 1);
/// # Ok::<(), fle_core::renaming::RenamingError>(())
/// ```
pub fn rotation_renaming(n: usize, seed: u64) -> Result<Renaming, RenamingError> {
    let protocol = PhaseAsyncLead::new(n)
        .with_seed(seed)
        .with_fn_key(seed ^ 0x5eed);
    match protocol.run_honest().outcome {
        Outcome::Elected(s) => Ok(Renaming {
            names: (0..n).map(|i| (i + s as usize) % n).collect(),
            elections: 1,
        }),
        Outcome::Fail(_) => Err(RenamingError::ElectionFailed { round: 0 }),
    }
}

/// A stream of unbiased bits extracted from independent elections via the
/// FLE → coin reduction: each election over `n` processors yields
/// `⌊log₂ n⌋` bits when its leader falls below the largest power of two
/// `≤ n` (rejection keeps the bits exactly uniform).
struct ElectionBitSource<F> {
    elect: F,
    round: usize,
    buffer: u64,
    buffered: u32,
    bits_per_election: u32,
    keep_below: u64,
    max_elections: usize,
}

impl<F: FnMut(usize) -> Outcome> ElectionBitSource<F> {
    fn new(n: usize, max_elections: usize, elect: F) -> Self {
        let bits = (usize::BITS - 1 - n.leading_zeros()).max(1);
        ElectionBitSource {
            elect,
            round: 0,
            buffer: 0,
            buffered: 0,
            bits_per_election: bits,
            keep_below: 1u64 << bits,
            max_elections,
        }
    }

    fn next_bit(&mut self) -> Result<u64, RenamingError> {
        while self.buffered == 0 {
            if self.round >= self.max_elections {
                return Err(RenamingError::OutOfEntropy);
            }
            let round = self.round;
            self.round += 1;
            match (self.elect)(round) {
                Outcome::Elected(j) if j < self.keep_below => {
                    self.buffer = j;
                    self.buffered = self.bits_per_election;
                }
                Outcome::Elected(_) => {} // rejected: keeps bits unbiased
                Outcome::Fail(_) => return Err(RenamingError::ElectionFailed { round }),
            }
        }
        self.buffered -= 1;
        let bit = self.buffer & 1;
        self.buffer >>= 1;
        Ok(bit)
    }

    /// Uniform draw from `0..bound` by rejection over `⌈log₂ bound⌉` bits.
    fn next_below(&mut self, bound: u64) -> Result<u64, RenamingError> {
        debug_assert!(bound >= 1);
        if bound == 1 {
            return Ok(0);
        }
        let bits = 64 - (bound - 1).leading_zeros();
        loop {
            let mut v = 0u64;
            for _ in 0..bits {
                v = (v << 1) | self.next_bit()?;
            }
            if v < bound {
                return Ok(v);
            }
        }
    }
}

/// Permutation renaming: a uniformly random permutation of `0..n` driven
/// entirely by election-derived unbiased bits (Fisher–Yates with
/// rejection sampling).
///
/// `elect` runs the `round`-th independent election and returns its
/// outcome; it is the injection point for deviations in tests. Use
/// [`permutation_renaming`] for the standard honest instantiation.
///
/// # Errors
///
/// Propagates election failures and reports entropy exhaustion after
/// `max_elections` elections.
pub fn permutation_renaming_with(
    n: usize,
    max_elections: usize,
    elect: impl FnMut(usize) -> Outcome,
) -> Result<Renaming, RenamingError> {
    let mut source = ElectionBitSource::new(n, max_elections, elect);
    let mut names: Vec<usize> = (0..n).collect();
    // Fisher–Yates: uniform over all n! permutations given uniform draws.
    for i in (1..n).rev() {
        let j = source.next_below(i as u64 + 1)? as usize;
        names.swap(i, j);
    }
    Ok(Renaming {
        names,
        elections: source.round,
    })
}

/// Permutation renaming over honest `PhaseAsyncLead` elections with
/// derived seeds.
///
/// # Errors
///
/// Same conditions as [`permutation_renaming_with`].
///
/// # Examples
///
/// ```
/// use fle_core::renaming::permutation_renaming;
///
/// let renaming = permutation_renaming(8, 7)?;
/// assert!(renaming.is_valid());
/// # Ok::<(), fle_core::renaming::RenamingError>(())
/// ```
pub fn permutation_renaming(n: usize, seed: u64) -> Result<Renaming, RenamingError> {
    // Entropy budget: n log n bits ≈ (n log n / log n) elections, padded
    // generously for rejections.
    let budget = 8 * n + 64;
    permutation_renaming_with(n, budget, |round| {
        PhaseAsyncLead::new(n)
            .with_seed(
                seed.wrapping_add(round as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )
            .with_fn_key(seed ^ round as u64)
            .run_honest()
            .outcome
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_sim::FailReason;

    #[test]
    fn rotation_names_are_valid_and_marginally_uniform() {
        let n = 8;
        let mut counts = vec![0u32; n];
        for seed in 0..400 {
            let r = rotation_renaming(n, seed).expect("honest elections succeed");
            assert!(r.is_valid());
            counts[r.names[3]] += 1;
        }
        let expect = 400.0 / n as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < expect * 0.4, "{counts:?}");
        }
    }

    #[test]
    fn permutation_names_are_valid() {
        for seed in 0..20 {
            let r = permutation_renaming(6, seed).expect("honest elections succeed");
            assert!(r.is_valid(), "seed {seed}: {:?}", r.names);
            assert!(r.elections >= 1);
        }
    }

    #[test]
    fn permutations_are_uniform_over_seeds() {
        // Drive the shuffle with synthetic uniform elections (n = 3 has
        // 6 permutations — enough resolution for a cheap uniformity check
        // of the bit-extraction + Fisher–Yates pipeline).
        use ring_sim::rng::SplitMix64;
        let mut counts = std::collections::HashMap::new();
        let trials = 1200;
        for seed in 0..trials {
            let mut rng = SplitMix64::new(seed);
            let r = permutation_renaming_with(3, 200, |_| Outcome::Elected(rng.next_below(3)))
                .expect("plenty of entropy");
            *counts.entry(r.names.clone()).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 6, "{counts:?}");
        let expect = trials as f64 / 6.0;
        for (p, &c) in &counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.35,
                "permutation {p:?} count {c}"
            );
        }
    }

    #[test]
    fn real_elections_reach_every_small_permutation() {
        // n = 4: all 24 permutations appear over enough seeds.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..400 {
            let r = permutation_renaming(4, seed).expect("honest");
            assert!(r.is_valid());
            seen.insert(r.names.clone());
        }
        assert_eq!(seen.len(), 24, "saw only {} permutations", seen.len());
    }

    #[test]
    fn election_failure_propagates() {
        let err = permutation_renaming_with(4, 10, |round| {
            if round == 2 {
                Outcome::Fail(FailReason::Abort)
            } else {
                Outcome::Elected(round as u64 % 4)
            }
        })
        .unwrap_err();
        assert_eq!(err, RenamingError::ElectionFailed { round: 2 });
    }

    #[test]
    fn entropy_exhaustion_is_reported() {
        // Elections that always land on the rejected value 3 of a 3-ring
        // (keep_below = 2) never produce bits.
        let err = permutation_renaming_with(3, 5, |_| Outcome::Elected(2)).unwrap_err();
        assert_eq!(err, RenamingError::OutOfEntropy);
    }

    #[test]
    fn single_processor_renaming_is_trivial() {
        let r = permutation_renaming_with(1, 0, |_| unreachable!("no bits needed"))
            .expect("empty shuffle");
        assert_eq!(r.names, vec![0]);
        assert_eq!(r.elections, 0);
    }

    #[test]
    fn rejection_keeps_draws_uniform() {
        // Drive the bit source with a deterministic cycling leader and
        // check next_below(3) never returns 3 and hits all of 0..3.
        let mut hits = [0u32; 3];
        let outcomes: Vec<u64> = (0..200).map(|i| i % 4).collect();
        let mut idx = 0;
        let mut source = ElectionBitSource::new(4, 1000, |_| {
            let o = outcomes[idx % outcomes.len()];
            idx += 1;
            Outcome::Elected(o)
        });
        for _ in 0..60 {
            let v = source.next_below(3).expect("enough entropy") as usize;
            hits[v] += 1;
        }
        assert!(hits.iter().all(|&h| h > 0), "{hits:?}");
    }

    #[test]
    fn error_display_is_informative() {
        assert_eq!(
            RenamingError::ElectionFailed { round: 3 }.to_string(),
            "underlying election 3 failed"
        );
        assert_eq!(
            RenamingError::OutOfEntropy.to_string(),
            "ran out of election-derived entropy"
        );
    }
}
