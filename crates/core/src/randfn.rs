//! The fixed random function `f` of `PhaseAsyncLead` (paper Section 6).
//!
//! The paper defines `f : [n]^n × [m]^{n−l} → [n]` as a *uniformly random
//! function*, fixed once and for all as part of the protocol, and proves
//! that with exponentially high probability over the choice of `f` the
//! protocol is `ε`-`k`-unbiased. Storing a genuinely random table of size
//! `n^n · m^{n−l}` is impossible, so this reproduction substitutes a keyed
//! pseudorandom function built from the SplitMix64 finalizer — see
//! DESIGN.md §4 for why this preserves the behaviour the resilience proof
//! relies on (the adversary can evaluate `f` but cannot invert it or
//! predict it from partial inputs).

use ring_sim::rng::mix;

/// A keyed pseudorandom function standing in for the paper's random `f`.
///
/// Two instances with the same key and range compute the same function;
/// different keys give (empirically) independent functions — the
/// experiments' analogue of "with high probability over randomizing `f`".
///
/// # Examples
///
/// ```
/// use fle_core::RandomFn;
///
/// let f = RandomFn::new(42, 16);
/// let y = f.eval(&[1, 2, 3], &[4, 5]);
/// assert!(y < 16);
/// assert_eq!(y, RandomFn::new(42, 16).eval(&[1, 2, 3], &[4, 5]));
///
/// // Different keys give (empirically) independent functions: over many
/// // inputs the two functions must disagree somewhere.
/// let g = RandomFn::new(43, 16);
/// assert!((0..64).any(|x| f.eval(&[x], &[]) != g.eval(&[x], &[])));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomFn {
    key: u64,
    range: u64,
}

// Domain-separation constants (random 64-bit values).
const DOMAIN_INIT: u64 = 0x5bd1_e995_9d1d_b3c9;
const DOMAIN_DATA: u64 = 0x27d4_eb2f_1656_67c5;
const DOMAIN_VALS: u64 = 0x1656_67b1_9e37_79f9;

impl RandomFn {
    /// Creates the function with the given key and output range `[0, range)`.
    ///
    /// # Panics
    ///
    /// Panics if `range == 0`.
    pub fn new(key: u64, range: u64) -> Self {
        assert!(range > 0, "range must be positive");
        Self { key, range }
    }

    /// The output range bound `n`.
    pub fn range(&self) -> u64 {
        self.range
    }

    /// The key identifying this instance of `f`.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Evaluates `f(data, vals)`.
    ///
    /// `data` plays the role of the `n` data values `d̂_1..d̂_n`, `vals` the
    /// first `n − l` validation values; both are absorbed
    /// position-dependently so that permuting the input changes the output.
    pub fn eval(&self, data: &[u64], vals: &[u64]) -> u64 {
        let mut h = mix(self.key ^ DOMAIN_INIT);
        h = mix(h ^ (data.len() as u64).wrapping_mul(DOMAIN_DATA));
        for (i, &x) in data.iter().enumerate() {
            h = mix(h ^ mix(x ^ (i as u64).wrapping_mul(DOMAIN_DATA)));
        }
        h = mix(h ^ (vals.len() as u64).wrapping_mul(DOMAIN_VALS));
        for (i, &x) in vals.iter().enumerate() {
            h = mix(h ^ mix(x ^ (i as u64).wrapping_mul(DOMAIN_VALS)));
        }
        h % self.range
    }
}

/// A precomputed evaluation table for [`RandomFn`] at one fixed input
/// shape `(data_len, vals_len)`.
///
/// [`RandomFn::eval`] recomputes the key/length absorption prefix and the
/// per-position domain-separation terms on every call. Within one sweep
/// configuration those are constants — every honest trial of a
/// `(protocol, n)` pair evaluates `f` on the same shape — so the batched
/// engine hoists them once per configuration and evaluates lanes with
/// [`EvalTable::eval_strided`] straight out of slot-major
/// structure-of-arrays storage, no gather copy required.
///
/// Produces bit-identical results to [`RandomFn::eval`] for the shape it
/// was built for.
#[derive(Debug, Clone)]
pub struct EvalTable {
    /// Hash state after absorbing the key and the `data` length term.
    prefix: u64,
    /// `data_pos[i] = i · DOMAIN_DATA` — the position term of `data[i]`.
    data_pos: Vec<u64>,
    /// The `vals` length absorption term.
    vals_len_term: u64,
    /// `vals_pos[i] = i · DOMAIN_VALS` — the position term of `vals[i]`.
    vals_pos: Vec<u64>,
    range: u64,
}

impl EvalTable {
    /// Precomputes the table of `f` for inputs of exactly `data_len` data
    /// values and `vals_len` validation values.
    pub fn new(f: &RandomFn, data_len: usize, vals_len: usize) -> Self {
        let mut prefix = mix(f.key ^ DOMAIN_INIT);
        prefix = mix(prefix ^ (data_len as u64).wrapping_mul(DOMAIN_DATA));
        Self {
            prefix,
            data_pos: (0..data_len as u64)
                .map(|i| i.wrapping_mul(DOMAIN_DATA))
                .collect(),
            vals_len_term: (vals_len as u64).wrapping_mul(DOMAIN_VALS),
            vals_pos: (0..vals_len as u64)
                .map(|i| i.wrapping_mul(DOMAIN_VALS))
                .collect(),
            range: f.range,
        }
    }

    /// Evaluates `f` for one lane of slot-major storage: the `i`-th data
    /// value is `data[i * stride + lane]` and the `i`-th validation value
    /// is `vals[i * stride + lane]`.
    ///
    /// Equals `RandomFn::eval` on the gathered inputs.
    ///
    /// # Panics
    ///
    /// Panics (via slice indexing) if the slices are shorter than the
    /// table's shape requires, or if `lane >= stride`.
    pub fn eval_strided(&self, data: &[u64], vals: &[u64], stride: usize, lane: usize) -> u64 {
        assert!(lane < stride, "lane {lane} out of stride {stride}");
        let mut h = self.prefix;
        for (i, &pos) in self.data_pos.iter().enumerate() {
            h = mix(h ^ mix(data[i * stride + lane] ^ pos));
        }
        h = mix(h ^ self.vals_len_term);
        for (i, &pos) in self.vals_pos.iter().enumerate() {
            h = mix(h ^ mix(vals[i * stride + lane] ^ pos));
        }
        h % self.range
    }
}

/// Parameters of the phase-validation protocol family, derived from `n`
/// (paper Section 6): `m = 2n²` and `l = ⌈10√n⌉`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseParams {
    /// Ring size.
    pub n: usize,
    /// Validation-value range `m = 2n²`.
    pub m: u64,
    /// The cutoff `l = ⌈10√n⌉`: only validation values of rounds
    /// `1..=n−l` enter `f`.
    pub l: usize,
}

impl PhaseParams {
    /// Derives the parameters for a ring of `n` processors.
    ///
    /// For small `n` where `⌈10√n⌉ ≥ n`, `l` is clamped to `n − 1` so at
    /// least one validation round feeds `f`; the paper's analysis assumes
    /// `n` large enough that `l ≤ n/k`, and the experiments report both
    /// regimes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn for_ring(n: usize) -> Self {
        assert!(n >= 2, "phase protocols need n >= 2");
        let l = ((10.0 * (n as f64).sqrt()).ceil() as usize).min(n - 1);
        Self {
            n,
            m: 2 * (n as u64) * (n as u64),
            l,
        }
    }

    /// Number of validation rounds whose values feed `f`: `n − l`.
    pub fn vals_in_f(&self) -> usize {
        self.n - self.l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let f = RandomFn::new(7, 13);
        for i in 0..100u64 {
            let y = f.eval(&[i, i + 1], &[i * 3]);
            assert!(y < 13);
            assert_eq!(y, f.eval(&[i, i + 1], &[i * 3]));
        }
    }

    #[test]
    fn position_dependent() {
        let f = RandomFn::new(7, 1 << 30);
        assert_ne!(f.eval(&[1, 2], &[]), f.eval(&[2, 1], &[]));
        assert_ne!(f.eval(&[1], &[2]), f.eval(&[2], &[1]));
        assert_ne!(f.eval(&[1, 2], &[]), f.eval(&[1], &[2]));
    }

    #[test]
    fn output_roughly_uniform_over_inputs() {
        let n = 16u64;
        let f = RandomFn::new(99, n);
        let mut counts = vec![0u32; n as usize];
        let trials = 64_000u64;
        for x in 0..trials {
            counts[f.eval(&[x, x * x], &[x ^ 0xabc]) as usize] += 1;
        }
        let expect = (trials / n) as f64;
        for &c in &counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.1, "bucket deviation {dev}");
        }
    }

    #[test]
    fn single_entry_change_flips_output_often() {
        // The core property the resilience proof needs: changing one input
        // coordinate re-randomizes the output.
        let n = 64u64;
        let f = RandomFn::new(3, n);
        let mut changed = 0u64;
        let trials = 2000u64;
        for x in 0..trials {
            let base = f.eval(&[x, 5, 9], &[7]);
            let tweak = f.eval(&[x, 6, 9], &[7]);
            if base != tweak {
                changed += 1;
            }
        }
        // Expected collisions ≈ trials/n ≈ 31; require most to change.
        assert!(changed > trials - 3 * trials / n - 30);
    }

    #[test]
    fn phase_params_formulas() {
        let p = PhaseParams::for_ring(100);
        assert_eq!(p.m, 20_000);
        assert_eq!(p.l, 100 - 1); // ⌈10·√100⌉ = 100 clamps to n−1
        let p = PhaseParams::for_ring(10_000);
        assert_eq!(p.l, 1000);
        assert_eq!(p.vals_in_f(), 9000);
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn zero_range_panics() {
        let _ = RandomFn::new(1, 0);
    }

    #[test]
    fn eval_table_matches_eval_across_shapes_and_lanes() {
        let mut rng = ring_sim::rng::SplitMix64::new(0xeaa1);
        for &(data_len, vals_len) in &[(0usize, 0usize), (1, 0), (0, 1), (4, 1), (8, 3), (64, 1)] {
            let f = RandomFn::new(rng.next_u64(), 1 + rng.next_below(1 << 20));
            let table = EvalTable::new(&f, data_len, vals_len);
            for &stride in &[1usize, 2, 7, 8] {
                // Slot-major storage: stride lanes of random inputs.
                let data: Vec<u64> = (0..data_len * stride).map(|_| rng.next_u64()).collect();
                let vals: Vec<u64> = (0..vals_len * stride).map(|_| rng.next_u64()).collect();
                for lane in 0..stride {
                    let d: Vec<u64> = (0..data_len).map(|i| data[i * stride + lane]).collect();
                    let v: Vec<u64> = (0..vals_len).map(|i| vals[i * stride + lane]).collect();
                    assert_eq!(
                        table.eval_strided(&data, &vals, stride, lane),
                        f.eval(&d, &v),
                        "shape ({data_len},{vals_len}) stride {stride} lane {lane}"
                    );
                }
            }
        }
    }
}
