//! Coalitions, honest segments and ring layouts (paper Definitions 2.2,
//! 3.1, 3.2 and Figure 1).
//!
//! A coalition is a set of ring positions controlled by adversaries. The
//! resilience analysis of the paper is driven entirely by the *layout* of
//! the coalition: the lengths `l_j` of the honest segments `I_j` between
//! consecutive adversaries decide which attacks are feasible
//! (`l_j ≤ k − 1` for the equal-spacing rushing attack, geometric distance
//! profiles for the cubic attack, and so on).

use ring_sim::rng::SplitMix64;
use ring_sim::NodeId;

/// A coalition of adversarial processors on a ring of `n` processors.
///
/// Positions are kept sorted. The coalition is the paper's `C ⊆ V`; the
/// honest processors are `V \ C`.
///
/// # Examples
///
/// ```
/// use fle_core::Coalition;
///
/// let c = Coalition::new(12, vec![1, 5, 9]).unwrap();
/// assert_eq!(c.k(), 3);
/// assert_eq!(c.distances(), vec![3, 3, 3]);
/// assert_eq!(c.honest_count(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coalition {
    n: usize,
    positions: Vec<NodeId>,
}

/// Error constructing a [`Coalition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoalitionError {
    /// A position was `>= n`.
    PositionOutOfRange {
        /// The offending position.
        position: NodeId,
        /// Ring size.
        n: usize,
    },
    /// The same position appeared twice.
    DuplicatePosition(NodeId),
    /// The coalition was empty.
    Empty,
    /// Every processor was in the coalition (no honest processor left).
    NoHonestProcessors,
}

impl std::fmt::Display for CoalitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoalitionError::PositionOutOfRange { position, n } => {
                write!(f, "position {position} out of range for ring of {n}")
            }
            CoalitionError::DuplicatePosition(p) => write!(f, "duplicate position {p}"),
            CoalitionError::Empty => write!(f, "coalition must contain at least one adversary"),
            CoalitionError::NoHonestProcessors => {
                write!(f, "coalition must leave at least one honest processor")
            }
        }
    }
}

impl std::error::Error for CoalitionError {}

/// One honest segment `I_j`: the maximal run of honest processors between
/// adversary `after` and the next adversary clockwise (paper Def. 3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HonestSegment {
    /// The adversary position immediately preceding this segment.
    pub after: NodeId,
    /// The honest positions in ring order (may be empty if two adversaries
    /// are adjacent).
    pub members: Vec<NodeId>,
}

impl HonestSegment {
    /// The paper's `l_j`: the number of honest processors in the segment.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the two adversaries are adjacent (`l_j = 0`), i.e. the
    /// preceding adversary is *not exposed* (paper Def. 3.2).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl Coalition {
    /// Builds a coalition from explicit positions.
    ///
    /// # Errors
    ///
    /// Returns a [`CoalitionError`] when a position is out of range or
    /// duplicated, when the coalition is empty, or when it covers the whole
    /// ring.
    pub fn new(n: usize, mut positions: Vec<NodeId>) -> Result<Self, CoalitionError> {
        if positions.is_empty() {
            return Err(CoalitionError::Empty);
        }
        positions.sort_unstable();
        for w in positions.windows(2) {
            if w[0] == w[1] {
                return Err(CoalitionError::DuplicatePosition(w[0]));
            }
        }
        if let Some(&p) = positions.iter().find(|&&p| p >= n) {
            return Err(CoalitionError::PositionOutOfRange { position: p, n });
        }
        if positions.len() == n {
            return Err(CoalitionError::NoHonestProcessors);
        }
        Ok(Self { n, positions })
    }

    /// `k` adversaries at (approximately) equal distances, starting at
    /// `offset`. With equal spacing every `l_j ∈ {⌊n/k⌋ − 1, ⌈n/k⌉ − 1}`,
    /// the layout of Lemma 4.1 / Theorem 4.2.
    ///
    /// # Errors
    ///
    /// Propagates [`CoalitionError`] (e.g. `k = 0` or `k = n`).
    pub fn equally_spaced(n: usize, k: usize, offset: usize) -> Result<Self, CoalitionError> {
        let positions = (0..k).map(|i| (offset + i * n / k) % n).collect();
        Self::new(n, positions)
    }

    /// `k` consecutive adversaries starting at `start` (the layout of
    /// Claim D.1 and of Abraham et al.'s original analysis).
    ///
    /// # Errors
    ///
    /// Propagates [`CoalitionError`].
    pub fn consecutive(n: usize, k: usize, start: usize) -> Result<Self, CoalitionError> {
        let positions = (0..k).map(|i| (start + i) % n).collect();
        Self::new(n, positions)
    }

    /// The randomized model of Appendix C: every processor is an adversary
    /// independently with probability `p`. Returns `None` when the sampled
    /// coalition is empty or covers the ring.
    pub fn random_bernoulli(n: usize, p: f64, seed: u64) -> Option<Self> {
        let mut rng = SplitMix64::new(seed);
        let positions: Vec<NodeId> = (0..n).filter(|_| rng.next_bool(p)).collect();
        Self::new(n, positions).ok()
    }

    /// A uniformly random coalition of exactly `k` positions.
    ///
    /// # Errors
    ///
    /// Propagates [`CoalitionError`].
    pub fn random_k(n: usize, k: usize, seed: u64) -> Result<Self, CoalitionError> {
        let mut rng = SplitMix64::new(seed);
        // Partial Fisher-Yates over 0..n.
        let mut pool: Vec<NodeId> = (0..n).collect();
        let mut picked = Vec::with_capacity(k.min(n));
        for i in 0..k.min(n) {
            let j = i + rng.next_below((n - i) as u64) as usize;
            pool.swap(i, j);
            picked.push(pool[i]);
        }
        Self::new(n, picked)
    }

    /// Ring size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Coalition size `k`.
    pub fn k(&self) -> usize {
        self.positions.len()
    }

    /// Number of honest processors, `n − k`.
    pub fn honest_count(&self) -> usize {
        self.n - self.positions.len()
    }

    /// Sorted adversary positions.
    pub fn positions(&self) -> &[NodeId] {
        &self.positions
    }

    /// `true` if `id` is an adversary.
    pub fn contains(&self, id: NodeId) -> bool {
        self.positions.binary_search(&id).is_ok()
    }

    /// Honest positions in ring order.
    pub fn honest_positions(&self) -> Vec<NodeId> {
        (0..self.n).filter(|&i| !self.contains(i)).collect()
    }

    /// The distances `l_j`: for the j-th adversary (in sorted order), the
    /// number of honest processors strictly between it and the next
    /// adversary clockwise. `Σ l_j = n − k` always holds.
    pub fn distances(&self) -> Vec<usize> {
        let k = self.k();
        (0..k)
            .map(|j| {
                let a = self.positions[j];
                let b = self.positions[(j + 1) % k];
                (b + self.n - a - 1) % self.n
            })
            .collect()
    }

    /// The honest segments `I_j`, one per adversary, in sorted adversary
    /// order (paper Def. 3.1 / Figure 1).
    pub fn segments(&self) -> Vec<HonestSegment> {
        let k = self.k();
        (0..k)
            .map(|j| {
                let a = self.positions[j];
                let l = self.distances()[j];
                let members = (1..=l).map(|step| (a + step) % self.n).collect();
                HonestSegment { after: a, members }
            })
            .collect()
    }

    /// Positions of *exposed* adversaries: those followed by at least one
    /// honest processor (paper Def. 3.2). Only exposed adversaries face
    /// validation constraints.
    pub fn exposed(&self) -> Vec<NodeId> {
        let d = self.distances();
        self.positions
            .iter()
            .zip(d)
            .filter(|&(_, l)| l >= 1)
            .map(|(&a, _)| a)
            .collect()
    }

    /// The largest honest segment length `max_j l_j`.
    pub fn max_distance(&self) -> usize {
        self.distances().into_iter().max().unwrap_or(0)
    }

    /// The smallest honest segment length `min_j l_j`.
    pub fn min_distance(&self) -> usize {
        self.distances().into_iter().min().unwrap_or(0)
    }

    /// Renders the ring as ASCII, adversaries as `A`, honest as `.`,
    /// wrapped to `width` characters per line — a textual Figure 1.
    ///
    /// # Examples
    ///
    /// ```
    /// use fle_core::Coalition;
    ///
    /// let c = Coalition::new(8, vec![0, 4]).unwrap();
    /// assert_eq!(c.render_ascii(8), "A...A...");
    /// ```
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(1);
        let mut out = String::with_capacity(self.n + self.n / width + 1);
        for i in 0..self.n {
            out.push(if self.contains(i) { 'A' } else { '.' });
            if (i + 1) % width == 0 && i + 1 != self.n {
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_sum_to_honest_count() {
        let c = Coalition::new(10, vec![0, 3, 4]).unwrap();
        assert_eq!(c.distances(), vec![2, 0, 5]);
        assert_eq!(c.distances().iter().sum::<usize>(), c.honest_count());
    }

    #[test]
    fn equally_spaced_distance_spread_at_most_one() {
        for (n, k) in [(16, 4), (17, 4), (100, 7), (101, 10)] {
            let c = Coalition::equally_spaced(n, k, 1).unwrap();
            let d = c.distances();
            let max = *d.iter().max().unwrap();
            let min = *d.iter().min().unwrap();
            assert!(max - min <= 1, "n={n} k={k} distances={d:?}");
        }
    }

    #[test]
    fn consecutive_has_single_exposed_adversary() {
        let c = Coalition::consecutive(10, 4, 2).unwrap();
        assert_eq!(c.positions(), &[2, 3, 4, 5]);
        assert_eq!(c.exposed(), vec![5]);
        assert_eq!(c.max_distance(), 6);
    }

    #[test]
    fn consecutive_wraps_around_origin() {
        let c = Coalition::consecutive(8, 3, 7).unwrap();
        assert_eq!(c.positions(), &[0, 1, 7]);
        // 7 -> 0 and 0 -> 1 are adjacent; only 1 is exposed.
        assert_eq!(c.exposed(), vec![1]);
    }

    #[test]
    fn segments_list_members_in_ring_order() {
        let c = Coalition::new(8, vec![1, 5]).unwrap();
        let segs = c.segments();
        assert_eq!(segs[0].after, 1);
        assert_eq!(segs[0].members, vec![2, 3, 4]);
        assert_eq!(segs[1].after, 5);
        assert_eq!(segs[1].members, vec![6, 7, 0]);
        assert!(!segs[0].is_empty());
        assert_eq!(segs[1].len(), 3);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(Coalition::new(4, vec![]), Err(CoalitionError::Empty));
        assert_eq!(
            Coalition::new(4, vec![1, 1]),
            Err(CoalitionError::DuplicatePosition(1))
        );
        assert_eq!(
            Coalition::new(4, vec![9]),
            Err(CoalitionError::PositionOutOfRange { position: 9, n: 4 })
        );
        assert_eq!(
            Coalition::new(3, vec![0, 1, 2]),
            Err(CoalitionError::NoHonestProcessors)
        );
    }

    #[test]
    fn bernoulli_is_deterministic_per_seed() {
        let a = Coalition::random_bernoulli(100, 0.2, 5);
        let b = Coalition::random_bernoulli(100, 0.2, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn bernoulli_density_is_plausible() {
        let mut total = 0usize;
        let trials = 200;
        for seed in 0..trials {
            if let Some(c) = Coalition::random_bernoulli(100, 0.2, seed) {
                total += c.k();
            }
        }
        let mean = total as f64 / trials as f64;
        assert!((10.0..30.0).contains(&mean), "mean coalition size {mean}");
    }

    #[test]
    fn random_k_has_exactly_k() {
        let c = Coalition::random_k(50, 7, 3).unwrap();
        assert_eq!(c.k(), 7);
        assert!(c.positions().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn render_wraps_lines() {
        let c = Coalition::new(6, vec![0, 3]).unwrap();
        assert_eq!(c.render_ascii(3), "A..\nA..");
    }

    #[test]
    fn honest_positions_complement_coalition() {
        let c = Coalition::new(6, vec![1, 4]).unwrap();
        assert_eq!(c.honest_positions(), vec![0, 2, 3, 5]);
    }

    #[test]
    fn error_messages_render() {
        for e in [
            CoalitionError::Empty,
            CoalitionError::NoHonestProcessors,
            CoalitionError::DuplicatePosition(2),
            CoalitionError::PositionOutOfRange { position: 8, n: 4 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
