//! Fair Leader Election ⇄ Fair Coin Toss reductions (paper Section 8,
//! Theorem 8.1).
//!
//! * FLE → coin toss: elect a leader, output its lowest bit. An
//!   `ε`-`k`-unbiased FLE yields a `(½nε)`-`k`-unbiased coin.
//! * Coin toss → FLE: run `log₂(n)` *independent* coin tosses and elect
//!   the processor whose id is the concatenation of the results. An
//!   `ε`-`k`-unbiased coin yields an FLE where every leader's probability
//!   is at most `(½ + ε)^{log₂ n}`.
//!
//! The paper notes the independence assumption for the second direction;
//! the harness here makes it explicit by drawing each toss from a
//! caller-supplied trial function indexed by toss number.

use crate::protocols::FleProtocol;
use ring_sim::{FailReason, Outcome};

/// Wraps an FLE protocol as a coin-toss protocol: the coin is the lowest
/// bit of the elected leader.
///
/// # Examples
///
/// ```
/// use fle_core::protocols::BasicLead;
/// use fle_core::reductions::CoinFromFle;
///
/// let coin = CoinFromFle::new(BasicLead::new(8).with_seed(3));
/// let b = coin.toss().elected().unwrap();
/// assert!(b == 0 || b == 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoinFromFle<P> {
    inner: P,
}

impl<P: FleProtocol> CoinFromFle<P> {
    /// Wraps `inner`.
    pub fn new(inner: P) -> Self {
        Self { inner }
    }

    /// The wrapped protocol.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Runs one coin toss: `Elected(j)` becomes `Elected(j mod 2)`,
    /// failures stay failures.
    pub fn toss(&self) -> Outcome {
        match self.inner.run_honest().outcome {
            Outcome::Elected(j) => Outcome::Elected(j % 2),
            fail => fail,
        }
    }
}

/// Maps an FLE outcome to the induced coin outcome (the reduction's core,
/// usable on outcomes produced under deviations too).
pub fn coin_outcome_of_fle(outcome: Outcome) -> Outcome {
    match outcome {
        Outcome::Elected(j) => Outcome::Elected(j % 2),
        fail => fail,
    }
}

/// Elects a leader among `n = 2^bits` processors from `bits` independent
/// coin tosses: toss `i` supplies bit `i` of the leader id. Any failed
/// toss fails the election.
///
/// # Examples
///
/// ```
/// use fle_core::reductions::elect_from_coins;
/// use ring_sim::Outcome;
///
/// // Three deterministic tosses 1, 0, 1 elect leader 0b101 = 5.
/// let out = elect_from_coins(3, |i| Outcome::Elected([1, 0, 1][i]));
/// assert_eq!(out, Outcome::Elected(5));
/// ```
///
/// # Panics
///
/// Panics if `bits == 0` or `bits > 63`.
pub fn elect_from_coins(bits: usize, mut toss: impl FnMut(usize) -> Outcome) -> Outcome {
    assert!(bits > 0 && bits <= 63, "bits must be in 1..=63");
    let mut leader = 0u64;
    for i in 0..bits {
        match toss(i) {
            Outcome::Elected(b) if b <= 1 => leader |= b << i,
            Outcome::Elected(_) => return Outcome::Fail(FailReason::Disagreement),
            fail @ Outcome::Fail(_) => return fail,
        }
    }
    Outcome::Elected(leader)
}

/// Theorem 8.1, first direction: the coin bias implied by an
/// `ε`-`k`-unbiased FLE on `n` processors is `½·n·ε` (the coin probability
/// is at most `½ + ½nε`).
pub fn coin_bias_from_fle(epsilon: f64, n: usize) -> f64 {
    0.5 * n as f64 * epsilon
}

/// Theorem 8.1, second direction: with an `ε`-`k`-unbiased coin, every
/// leader's probability after `log₂(n)` independent tosses is at most
/// `(½ + ε)^{log₂ n}`.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn fle_prob_bound_from_coin(epsilon: f64, n: usize) -> f64 {
    assert!(n.is_power_of_two(), "n must be a power of two");
    let bits = n.trailing_zeros();
    (0.5 + epsilon).powi(bits as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{ALeadUni, BasicLead};

    #[test]
    fn coin_from_fle_is_fair_over_seeds() {
        let trials = 2000;
        let mut ones = 0;
        for seed in 0..trials {
            let coin = CoinFromFle::new(ALeadUni::new(8).with_seed(seed));
            match coin.toss() {
                Outcome::Elected(1) => ones += 1,
                Outcome::Elected(0) => {}
                other => panic!("honest toss failed: {other:?}"),
            }
        }
        let freq = ones as f64 / trials as f64;
        assert!((freq - 0.5).abs() < 0.05, "ones frequency {freq}");
    }

    #[test]
    fn coin_outcome_preserves_failures() {
        let fail = Outcome::Fail(FailReason::Abort);
        assert_eq!(coin_outcome_of_fle(fail), fail);
        assert_eq!(
            coin_outcome_of_fle(Outcome::Elected(7)),
            Outcome::Elected(1)
        );
        assert_eq!(
            coin_outcome_of_fle(Outcome::Elected(4)),
            Outcome::Elected(0)
        );
    }

    #[test]
    fn elect_from_coins_concatenates_bits() {
        let out = elect_from_coins(4, |i| Outcome::Elected(((i + 1) % 2) as u64));
        // bits: i=0 -> 1, i=1 -> 0, i=2 -> 1, i=3 -> 0  => 0b0101 = 5
        assert_eq!(out, Outcome::Elected(5));
    }

    #[test]
    fn elect_from_coins_propagates_failure() {
        let out = elect_from_coins(3, |i| {
            if i == 1 {
                Outcome::Fail(FailReason::Deadlock)
            } else {
                Outcome::Elected(0)
            }
        });
        assert_eq!(out, Outcome::Fail(FailReason::Deadlock));
    }

    #[test]
    fn elect_from_coins_rejects_non_binary_coin() {
        let out = elect_from_coins(2, |_| Outcome::Elected(2));
        assert!(out.is_fail());
    }

    #[test]
    fn elect_from_fle_coins_is_roughly_uniform() {
        // 2 bits from the parity of Basic-LEAD over independent seeds.
        let n = 4usize;
        let trials = 2000;
        let mut counts = vec![0u32; n];
        for t in 0..trials {
            let out = elect_from_coins(2, |i| {
                CoinFromFle::new(BasicLead::new(8).with_seed(t * 2 + i as u64)).toss()
            });
            counts[out.elected().expect("honest") as usize] += 1;
        }
        let expect = trials as f64 / n as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < expect * 0.3, "{counts:?}");
        }
    }

    #[test]
    fn bias_bound_formulas() {
        assert!((coin_bias_from_fle(0.01, 100) - 0.5).abs() < 1e-12);
        let b = fle_prob_bound_from_coin(0.0, 8);
        assert!((b - 0.125).abs() < 1e-12);
        let b = fle_prob_bound_from_coin(0.1, 4);
        assert!((b - 0.36).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fle_bound_requires_power_of_two() {
        let _ = fle_prob_bound_from_coin(0.0, 6);
    }
}
