//! # fle-core — fair leader election for rational agents
//!
//! Executable reproduction of the protocols and game-theoretic machinery of
//! **Yifrach & Mansour, "Fair Leader Election for Rational Agents in
//! Asynchronous Rings and Networks" (PODC 2018)**.
//!
//! A *fair leader election* (FLE) protocol elects every processor with
//! probability exactly `1/n`. The paper studies how large a coalition of
//! *rational* adversaries — processors that prefer any valid leader over a
//! failed protocol, but want to bias who wins — a protocol can tolerate on
//! an asynchronous unidirectional ring:
//!
//! * [`protocols::BasicLead`] falls to a single adversary (Appendix B).
//! * [`protocols::ALeadUni`] (Abraham et al.) resists `O(n^{1/4})`
//!   coalitions but falls to `2·n^{1/3}` well-placed adversaries
//!   (Sections 3–5).
//! * [`protocols::PhaseAsyncLead`] — the paper's contribution — resists
//!   `O(√n)` coalitions, tight up to constants (Section 6).
//!
//! This crate provides the protocols, the coalition/honest-segment layout
//! algebra ([`Coalition`], Figure 1), the rational-utility and bias
//! definitions ([`game`]), the keyed random function standing in for the
//! paper's random `f` ([`RandomFn`]), and the FLE ⇄ coin-toss reductions
//! ([`reductions`], Section 8). The adversarial deviations live in the
//! `fle-attacks` crate; general-topology impossibility machinery in
//! `fle-topology`.
//!
//! ## Quick start
//!
//! ```
//! use fle_core::protocols::{FleProtocol, PhaseAsyncLead};
//!
//! // A 16-processor ring, seeded deterministically.
//! let protocol = PhaseAsyncLead::new(16).with_seed(2024).with_fn_key(7);
//! let execution = protocol.run_honest();
//! let leader = execution.outcome.elected().expect("honest runs succeed");
//! assert!(leader < 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coalition;
pub mod consensus;
pub mod exact;
pub mod game;
pub mod protocols;
mod randfn;
pub mod reductions;
pub mod renaming;

pub use coalition::{Coalition, CoalitionError, HonestSegment};
pub use randfn::{EvalTable, PhaseParams, RandomFn};

/// The node substitutions an adversarial deviation installs: pairs of
/// ring position and deviating behaviour, consumed by the protocols'
/// `run_with` methods.
pub type DeviationNodes<M> = Vec<(NodeId, Box<dyn Node<M>>)>;

// Re-export the simulator types that appear in this crate's public API so
// downstream users need only one import root.
pub use ring_sim::{Execution, FailReason, Node, NodeId, Outcome};
