//! `PhaseAsyncLead` and `PhaseSumLead` — the paper's phase-validated
//! protocols (Section 6, Appendix E.3, Appendix E.4).
//!
//! The execution proceeds in `n` logical rounds. In round `r` each
//! processor first receives one **data** message (the `A-LEADuni`
//! buffered secret-sharing, so processor `p` learns `d_{p−r mod n}`) and
//! then one **validation** message. Round `r`'s validation value `v_r` is
//! drawn and emitted by the round's *validator* — 0-indexed processor
//! `r − 1` — right after its round-`r` data send; every other processor
//! forwards it without delay, and the validator finally absorbs its own
//! value after a full circle and aborts unless it returns intact. The
//! origin launches round `r + 1`'s data wave only after forwarding `v_r`,
//! which keeps all processors `O(k)`-synchronized — the property that
//! defeats the cubic attack.
//!
//! * [`PhaseAsyncLead`] elects `f(d̂_1..d̂_n, v̂_1..v̂_{n−l})` for the fixed
//!   random function `f` ([`crate::RandomFn`]) with `l = ⌈10√n⌉`,
//!   `m = 2n²`.
//! * [`PhaseSumLead`] is the Appendix E.4 ablation: identical mechanics
//!   but elects `Σ d̂_i (mod n)`. Four adversaries defeat it by smuggling
//!   partial sums through the validation channel — the experiment that
//!   motivates the random function.
//!
//! The paper's appendix pseudo-code has two known artifacts (the origin
//! terminating before forwarding `v_n`, and an extra data send after the
//! main loop); as in `A-LEADuni` we resolve them in favour of the counting
//! used by the proofs: every processor sends exactly `n` data plus `n`
//! validation messages and receives the same.

use super::{
    fold_mod, node_rng, run_ring, run_ring_probed, wrap_sub_usize, FleProtocol, TrialCache,
    ORIGIN_WAKES,
};
use crate::randfn::{PhaseParams, RandomFn};
use ring_sim::{ArenaBacked, Ctx, Execution, Node, NodeId, Probe, TrialArena};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of [`PhaseAsyncLead::new`] calls — instrumentation
/// for the harness's instance-hoisting contract (a sweep worker must build
/// the protocol instance once per `(protocol, n, fn_key)` config, not once
/// per trial). See [`phase_async_builds`].
static PHASE_ASYNC_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Returns the process-wide number of [`PhaseAsyncLead::new`] calls so
/// far. Tests diff this counter around a sweep to assert the
/// seed-independent protocol state is hoisted out of the per-trial loop.
pub fn phase_async_builds() -> u64 {
    PHASE_ASYNC_BUILDS.load(Ordering::Relaxed)
}

/// A message of the phase protocols: strictly alternating data /
/// validation. An honest processor aborts on a parity violation, which is
/// what blocks burst-style rushing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseMsg {
    /// A data message carrying a (claimed) secret value in `[0, n)`.
    Data(u64),
    /// A validation message carrying a value in `[0, m)`.
    Val(u64),
}

/// How the terminal output is computed from the collected values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutputRule {
    /// `f(d̂, v̂_1..v̂_{n−l})` — `PhaseAsyncLead`.
    Random(RandomFn),
    /// `Σ d̂ (mod n)` — `PhaseSumLead`.
    Sum,
}

/// The paper's `PhaseAsyncLead` protocol instance.
///
/// # Examples
///
/// ```
/// use fle_core::protocols::{FleProtocol, PhaseAsyncLead};
///
/// let p = PhaseAsyncLead::new(16).with_seed(3).with_fn_key(9);
/// let exec = p.run_honest();
/// assert!(exec.outcome.elected().unwrap() < 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseAsyncLead {
    params: PhaseParams,
    seed: u64,
    f: RandomFn,
}

impl PhaseAsyncLead {
    /// Creates an instance for a ring of `n` processors with seed 0 and
    /// the random function keyed 0.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` (the phase mechanics need at least a few
    /// processors between origin and final validator).
    pub fn new(n: usize) -> Self {
        assert!(n >= 4, "PhaseAsyncLead needs n >= 4");
        PHASE_ASYNC_BUILDS.fetch_add(1, Ordering::Relaxed);
        Self {
            params: PhaseParams::for_ring(n),
            seed: 0,
            f: RandomFn::new(0, n as u64),
        }
    }

    /// Sets the randomness seed for the honest processors' values.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Re-keys the random function `f` (the experiments' analogue of
    /// "randomizing `f`").
    pub fn with_fn_key(mut self, key: u64) -> Self {
        self.f = RandomFn::new(key, self.params.n as u64);
        self
    }

    /// **Ablation knob**: overrides the validation-value range `m`
    /// (paper default `2n²`). The resilience analysis needs a validator's
    /// value to be unguessable (`1/m ≤ 1/(2n²)` per guess); shrinking `m`
    /// makes the guessing probability measurable — see the `ablate`
    /// experiment.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn with_validation_range(mut self, m: u64) -> Self {
        assert!(m >= 1, "validation range must be positive");
        self.params.m = m;
        self
    }

    /// The protocol parameters `(n, m, l)`.
    pub fn params(&self) -> PhaseParams {
        self.params
    }

    /// The instance seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The random function shared by all processors of this instance.
    pub fn random_fn(&self) -> RandomFn {
        self.f
    }

    /// Builds the honest node for position `id` as a boxed trait object
    /// (for heterogeneous protocol/attack mixes).
    pub fn honest_node(&self, id: NodeId) -> Box<dyn Node<PhaseMsg>> {
        Box::new(self.honest_ring_node(id))
    }

    /// Builds the honest node for position `id` as the concrete
    /// [`PhaseNode`] enum — the monomorphized form the batch fast path
    /// stores in a plain `Vec` (origin/normal dispatch is a branch, not a
    /// vtable).
    pub fn honest_ring_node(&self, id: NodeId) -> PhaseNode {
        make_honest_node(self.params, self.seed, OutputRule::Random(self.f), id)
    }

    /// [`PhaseAsyncLead::honest_ring_node`] with the node's packed
    /// `data ‖ vals` store drawn from `arena` instead of the heap — the
    /// batch path that makes whole trials allocation-free. The built node
    /// is bit-identical in behaviour; reclaim its store with
    /// [`ArenaBacked::reclaim`] after the trial.
    pub fn honest_ring_node_in(&self, id: NodeId, arena: &mut TrialArena) -> PhaseNode {
        make_honest_node_with_store(
            self.params,
            self.seed,
            OutputRule::Random(self.f),
            id,
            arena.alloc_u64s(2 * self.params.n + 1),
        )
    }

    /// Only the origin wakes spontaneously.
    pub fn wakes(&self) -> Vec<NodeId> {
        vec![0]
    }

    /// Runs with the coalition positions replaced by `overrides`.
    pub fn run_with(&self, overrides: Vec<(NodeId, Box<dyn Node<PhaseMsg>>)>) -> Execution {
        run_ring(
            self.params.n,
            |id| self.honest_node(id),
            overrides,
            &self.wakes(),
        )
    }

    /// [`PhaseAsyncLead::run_with`] through a per-thread [`TrialCache`] —
    /// the engine attack fast path: honest positions run the concrete
    /// [`PhaseNode`] with arena-backed stores; only coalition positions
    /// run `D`. Bit-identical to [`PhaseAsyncLead::run_with`] over
    /// equivalent overrides.
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from `n`, or an override id
    /// is out of range or duplicated.
    pub fn run_with_in<'c, D: Node<PhaseMsg>>(
        &self,
        overrides: Vec<(NodeId, D)>,
        cache: &'c mut TrialCache<PhaseMsg, PhaseNode, D>,
    ) -> &'c Execution {
        assert_eq!(
            cache.n(),
            self.params.n,
            "cache ring size must match the protocol's ring size"
        );
        cache.run(
            |id, arena| self.honest_ring_node_in(id, arena),
            overrides,
            ORIGIN_WAKES,
        )
    }

    /// Runs an honest execution through a reusable engine (the
    /// monomorphized batch-trial fast path; bit-identical to
    /// [`FleProtocol::run_honest`]).
    ///
    /// # Panics
    ///
    /// Panics if the engine's ring size differs from `n`.
    pub fn run_honest_in(&self, engine: &mut ring_sim::Engine<PhaseMsg>) -> Execution {
        super::run_ring_honest_in(
            engine,
            self.params.n,
            |id| self.honest_ring_node(id),
            &self.wakes(),
        )
    }

    /// [`PhaseAsyncLead::run_with`] plus an instrumentation probe.
    pub fn run_with_probe(
        &self,
        overrides: Vec<(NodeId, Box<dyn Node<PhaseMsg>>)>,
        probe: &mut dyn Probe<PhaseMsg>,
    ) -> Execution {
        run_ring_probed(
            self.params.n,
            |id| self.honest_node(id),
            overrides,
            &self.wakes(),
            Some(probe),
        )
    }
}

impl FleProtocol for PhaseAsyncLead {
    fn n(&self) -> usize {
        self.params.n
    }

    fn name(&self) -> &'static str {
        "PhaseAsyncLead"
    }

    fn run_honest(&self) -> Execution {
        self.run_with(Vec::new())
    }
}

/// The Appendix E.4 ablation: phase validation with the `sum` output rule.
///
/// # Examples
///
/// ```
/// use fle_core::protocols::{FleProtocol, PhaseSumLead};
///
/// let exec = PhaseSumLead::new(12).with_seed(1).run_honest();
/// assert!(exec.outcome.elected().unwrap() < 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSumLead {
    params: PhaseParams,
    seed: u64,
}

impl PhaseSumLead {
    /// Creates an instance for a ring of `n` processors (seed 0).
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 4, "PhaseSumLead needs n >= 4");
        Self {
            params: PhaseParams::for_ring(n),
            seed: 0,
        }
    }

    /// Sets the randomness seed for the honest processors' values.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The protocol parameters `(n, m, l)`.
    pub fn params(&self) -> PhaseParams {
        self.params
    }

    /// The instance seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Builds the honest node for position `id` as a boxed trait object
    /// (for heterogeneous protocol/attack mixes).
    pub fn honest_node(&self, id: NodeId) -> Box<dyn Node<PhaseMsg>> {
        Box::new(self.honest_ring_node(id))
    }

    /// Builds the honest node for position `id` as the concrete
    /// [`PhaseNode`] enum (see [`PhaseAsyncLead::honest_ring_node`]).
    pub fn honest_ring_node(&self, id: NodeId) -> PhaseNode {
        make_honest_node(self.params, self.seed, OutputRule::Sum, id)
    }

    /// [`PhaseSumLead::honest_ring_node`] with the node's store drawn from
    /// `arena` (see [`PhaseAsyncLead::honest_ring_node_in`]).
    pub fn honest_ring_node_in(&self, id: NodeId, arena: &mut TrialArena) -> PhaseNode {
        make_honest_node_with_store(
            self.params,
            self.seed,
            OutputRule::Sum,
            id,
            arena.alloc_u64s(2 * self.params.n + 1),
        )
    }

    /// Only the origin wakes spontaneously.
    pub fn wakes(&self) -> Vec<NodeId> {
        vec![0]
    }

    /// Runs with the coalition positions replaced by `overrides`.
    pub fn run_with(&self, overrides: Vec<(NodeId, Box<dyn Node<PhaseMsg>>)>) -> Execution {
        run_ring(
            self.params.n,
            |id| self.honest_node(id),
            overrides,
            &self.wakes(),
        )
    }

    /// [`PhaseSumLead::run_with`] through a per-thread [`TrialCache`] (see
    /// [`PhaseAsyncLead::run_with_in`]).
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from `n`, or an override id
    /// is out of range or duplicated.
    pub fn run_with_in<'c, D: Node<PhaseMsg>>(
        &self,
        overrides: Vec<(NodeId, D)>,
        cache: &'c mut TrialCache<PhaseMsg, PhaseNode, D>,
    ) -> &'c Execution {
        assert_eq!(
            cache.n(),
            self.params.n,
            "cache ring size must match the protocol's ring size"
        );
        cache.run(
            |id, arena| self.honest_ring_node_in(id, arena),
            overrides,
            ORIGIN_WAKES,
        )
    }

    /// Runs an honest execution through a reusable engine (the
    /// monomorphized batch-trial fast path; bit-identical to
    /// [`FleProtocol::run_honest`]).
    ///
    /// # Panics
    ///
    /// Panics if the engine's ring size differs from `n`.
    pub fn run_honest_in(&self, engine: &mut ring_sim::Engine<PhaseMsg>) -> Execution {
        super::run_ring_honest_in(
            engine,
            self.params.n,
            |id| self.honest_ring_node(id),
            &self.wakes(),
        )
    }
}

impl FleProtocol for PhaseSumLead {
    fn n(&self) -> usize {
        self.params.n
    }

    fn name(&self) -> &'static str {
        "PhaseSumLead"
    }

    fn run_honest(&self) -> Execution {
        self.run_with(Vec::new())
    }
}

fn make_honest_node(params: PhaseParams, seed: u64, rule: OutputRule, id: NodeId) -> PhaseNode {
    let store = vec![0; 2 * params.n + 1];
    make_honest_node_with_store(params, seed, rule, id, store)
}

/// [`make_honest_node`] over a caller-provided (typically arena-drawn)
/// store. `store` must be `2n + 1` zeros — exactly what
/// [`TrialArena::alloc_u64s`] hands out.
fn make_honest_node_with_store(
    params: PhaseParams,
    seed: u64,
    rule: OutputRule,
    id: NodeId,
    store: Vec<u64>,
) -> PhaseNode {
    debug_assert_eq!(store.len(), 2 * params.n + 1);
    debug_assert!(store.iter().all(|&x| x == 0));
    let mut rng = node_rng(seed, id);
    let d = rng.next_below(params.n as u64);
    let common = PhaseState {
        params,
        id,
        rule,
        d,
        v_own: 0,
        buffer: d,
        round: 0,
        expect_data: true,
        store,
        rng,
    };
    if id == 0 {
        PhaseNode::Origin(PhaseOrigin { s: common })
    } else {
        PhaseNode::Normal(PhaseNormal { s: common })
    }
}

/// An honest phase processor as a concrete type: the pacing origin or a
/// normal processor. Shared by [`PhaseAsyncLead`] and [`PhaseSumLead`]
/// (which differ only in the output rule carried inside).
///
/// Built by [`PhaseAsyncLead::honest_ring_node`] /
/// [`PhaseSumLead::honest_ring_node`]; honest sweeps store a
/// `Vec<PhaseNode>`, so the engine's activation dispatch is a two-way
/// branch instead of a `Box<dyn Node>` vtable call.
pub enum PhaseNode {
    /// The spontaneously-waking origin (processor 0) that paces rounds.
    Origin(PhaseOrigin),
    /// A normal processor (`id ≥ 1`).
    Normal(PhaseNormal),
}

impl Node<PhaseMsg> for PhaseNode {
    fn on_wake(&mut self, ctx: &mut Ctx<'_, PhaseMsg>) {
        match self {
            PhaseNode::Origin(o) => o.on_wake(ctx),
            PhaseNode::Normal(p) => p.on_wake(ctx),
        }
    }

    #[inline]
    fn on_message(&mut self, from: NodeId, msg: PhaseMsg, ctx: &mut Ctx<'_, PhaseMsg>) {
        match self {
            PhaseNode::Origin(o) => o.on_message(from, msg, ctx),
            PhaseNode::Normal(p) => p.on_message(from, msg, ctx),
        }
    }
}

impl ArenaBacked for PhaseNode {
    fn reclaim(&mut self, arena: &mut TrialArena) {
        let s = match self {
            PhaseNode::Origin(o) => &mut o.s,
            PhaseNode::Normal(p) => &mut p.s,
        };
        arena.reclaim_u64s(std::mem::take(&mut s.store));
    }
}

/// State shared by origin and normal phase processors.
struct PhaseState {
    params: PhaseParams,
    id: NodeId,
    rule: OutputRule,
    d: u64,
    v_own: u64,
    buffer: u64,
    /// Completed data rounds (1-based round currently being processed).
    round: usize,
    expect_data: bool,
    /// The `n` collected data values `d̂` followed by the `n + 1` (1-based)
    /// validation values `v̂`, packed into one allocation so building a
    /// node costs a single heap allocation instead of two.
    store: Vec<u64>,
    rng: ring_sim::rng::SplitMix64,
}

impl PhaseState {
    /// The round this processor validates: 0-indexed processor `p`
    /// validates round `p + 1` (the paper's 1-indexed "processor `i`
    /// validates round `i`").
    fn validator_round(&self) -> usize {
        self.id + 1
    }

    /// Records the collected data value of processor `i`.
    #[inline]
    fn set_data(&mut self, i: usize, x: u64) {
        self.store[i] = x;
    }

    /// Records round `r`'s validation value.
    #[inline]
    fn set_val(&mut self, r: usize, y: u64) {
        self.store[self.params.n + r] = y;
    }

    fn output(&self) -> u64 {
        let (data, vals) = self.store.split_at(self.params.n);
        match self.rule {
            OutputRule::Random(f) => f.eval(data, &vals[1..=self.params.vals_in_f()]),
            OutputRule::Sum => data.iter().sum::<u64>() % self.params.n as u64,
        }
    }
}

/// A normal phase processor (`id >= 1`).
pub struct PhaseNormal {
    s: PhaseState,
}

impl Node<PhaseMsg> for PhaseNormal {
    fn on_message(&mut self, _from: NodeId, msg: PhaseMsg, ctx: &mut Ctx<'_, PhaseMsg>) {
        let s = &mut self.s;
        let n = s.params.n;
        match msg {
            PhaseMsg::Data(x) if s.expect_data => {
                s.expect_data = false;
                let x = fold_mod(x, n as u64);
                s.round += 1;
                // Buffered secret sharing, exactly as in A-LEADuni.
                ctx.send(PhaseMsg::Data(s.buffer));
                s.buffer = x;
                // Round r delivers the data value of processor id − r (mod n).
                // `round ∈ 1..=n` and `id < n`, so both reductions are
                // single conditional subtracts, not divisions.
                let r = if s.round < n { s.round } else { s.round % n };
                s.set_data(wrap_sub_usize(s.id + n - r, n), x);
                if s.round == s.validator_round() {
                    s.v_own = s.rng.next_below(s.params.m);
                    ctx.send(PhaseMsg::Val(s.v_own));
                }
                if s.round == n && x != s.d {
                    // The value that came full circle is not our secret.
                    ctx.abort();
                }
            }
            PhaseMsg::Val(y) if !s.expect_data => {
                s.expect_data = true;
                let y = fold_mod(y, s.params.m);
                if s.round == s.validator_round() {
                    if y != s.v_own {
                        // Phase validation failed: someone desynchronized
                        // the ring or guessed our value wrong.
                        ctx.abort();
                        return;
                    }
                    s.set_val(s.round, s.v_own); // absorb; do not forward
                } else {
                    s.set_val(s.round, y);
                    ctx.send(PhaseMsg::Val(y));
                }
                if s.round == n {
                    ctx.terminate(Some(s.output()));
                }
            }
            // Parity violation: a data message where a validation message
            // was due, or vice versa.
            _ => ctx.abort(),
        }
    }
}

/// The origin (`id == 0`): wakes spontaneously, emits `Data(d_0)` and
/// `Val(v_1)`, and thereafter launches round `r + 1`'s data wave only
/// after forwarding round `r`'s validation value — the pacing that keeps
/// the ring synchronized.
pub struct PhaseOrigin {
    s: PhaseState,
}

impl Node<PhaseMsg> for PhaseOrigin {
    fn on_wake(&mut self, ctx: &mut Ctx<'_, PhaseMsg>) {
        let s = &mut self.s;
        s.set_data(0, s.d);
        s.round = 1;
        ctx.send(PhaseMsg::Data(s.d));
        s.v_own = s.rng.next_below(s.params.m);
        ctx.send(PhaseMsg::Val(s.v_own));
    }

    fn on_message(&mut self, _from: NodeId, msg: PhaseMsg, ctx: &mut Ctx<'_, PhaseMsg>) {
        let s = &mut self.s;
        let n = s.params.n;
        match msg {
            PhaseMsg::Data(x) if s.expect_data => {
                s.expect_data = false;
                let x = fold_mod(x, n as u64);
                // Round r delivers the data value of processor n − r (mod n)
                // (`round ∈ 1..=n`, so these are conditional subtracts).
                let r = if s.round < n { s.round } else { s.round % n };
                s.set_data(wrap_sub_usize(n - r, n), x);
                s.buffer = x;
                if s.round == n && x != s.d {
                    ctx.abort();
                }
            }
            PhaseMsg::Val(y) if !s.expect_data => {
                s.expect_data = true;
                let y = fold_mod(y, s.params.m);
                if s.round == 1 {
                    if y != s.v_own {
                        ctx.abort();
                        return;
                    }
                    s.set_val(1, s.v_own); // absorb own validation value
                } else {
                    s.set_val(s.round, y);
                    ctx.send(PhaseMsg::Val(y));
                }
                if s.round == n {
                    ctx.terminate(Some(s.output()));
                } else {
                    // Launch the next round's data wave.
                    ctx.send(PhaseMsg::Data(s.buffer));
                    s.round += 1;
                }
            }
            _ => ctx.abort(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::honest_data_values;
    use ring_sim::Outcome;

    #[test]
    fn phase_sum_elects_sum_of_values() {
        for n in [4, 5, 9, 24] {
            for seed in 0..4 {
                let p = PhaseSumLead::new(n).with_seed(seed);
                let expected = honest_data_values(seed, n).iter().sum::<u64>() % n as u64;
                assert_eq!(
                    p.run_honest().outcome,
                    Outcome::Elected(expected),
                    "n={n} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn phase_async_honest_runs_succeed() {
        for n in [4, 7, 16, 33] {
            for seed in 0..4 {
                let p = PhaseAsyncLead::new(n)
                    .with_seed(seed)
                    .with_fn_key(seed + 99);
                let out = p.run_honest().outcome;
                let leader = out
                    .elected()
                    .unwrap_or_else(|| panic!("honest run failed: n={n} seed={seed} out={out:?}"));
                assert!(leader < n as u64);
            }
        }
    }

    #[test]
    fn message_complexity_is_2n_per_processor() {
        let n = 10u64;
        let exec = PhaseAsyncLead::new(n as usize).with_seed(5).run_honest();
        assert_eq!(exec.stats.total_sent(), 2 * n * n);
        assert!(exec.stats.sent.iter().all(|&s| s == 2 * n));
        assert!(exec.stats.received.iter().all(|&r| r == 2 * n));
    }

    #[test]
    fn all_processors_agree_on_f_output() {
        let p = PhaseAsyncLead::new(9).with_seed(2).with_fn_key(5);
        let exec = p.run_honest();
        let outs: Vec<u64> = exec
            .outputs
            .iter()
            .map(|o| o.expect("terminated").expect("no abort"))
            .collect();
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn different_fn_keys_give_different_functions() {
        // With the same secrets, different keys of f should usually elect
        // different leaders — the "randomizing f" degree of freedom.
        let n = 16;
        let mut distinct = std::collections::HashSet::new();
        for key in 0..32 {
            let p = PhaseAsyncLead::new(n).with_seed(7).with_fn_key(key);
            distinct.insert(p.run_honest().outcome.elected().unwrap());
        }
        assert!(
            distinct.len() > 4,
            "only {} distinct leaders",
            distinct.len()
        );
    }

    #[test]
    fn phase_async_outcome_uniform_over_seeds() {
        let n = 8usize;
        let trials = 3000;
        let mut counts = vec![0u32; n];
        for seed in 0..trials {
            let p = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(1234);
            counts[p.run_honest().outcome.elected().expect("success") as usize] += 1;
        }
        let expect = trials as f64 / n as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.25,
                "counts={counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "n >= 4")]
    fn tiny_ring_rejected() {
        let _ = PhaseAsyncLead::new(3);
    }
}
