//! `A-LEADuni` — Abraham et al.'s buffered fair-leader-election protocol
//! for an asynchronous unidirectional ring (paper Section 3, Appendix A).
//!
//! Each processor draws a secret `d_i ∈ [n]`. A secret-sharing pass moves
//! all secrets around the ring, but *normal* processors delay every
//! incoming message by one round (a buffer of size 1), which forces every
//! processor to commit to its own secret before learning anyone else's.
//! The origin (processor 0) wakes spontaneously, emits its secret, and
//! thereafter behaves as a pipe. Every processor receives exactly `n`
//! messages, validates that the `n`-th is its own secret (otherwise it
//! aborts with `⊥`), and elects `Σ dᵢ (mod n)`.
//!
//! The paper's appendix pseudo-code counts the origin's rounds from 1 and
//! would terminate it one receive early; we use the counting that matches
//! the proofs (Lemma 3.3): every processor sends exactly `n` and receives
//! exactly `n` messages, and the origin does not forward its `n`-th
//! (final) receive.

use super::{
    fold_mod, node_rng, run_ring, run_ring_probed, wrap_sub, FleProtocol, TrialCache, ORIGIN_WAKES,
};
use ring_sim::{ArenaBacked, Ctx, Execution, Node, NodeId, Probe, TrialArena};

/// [`TrialCache`] for `A-LEADuni`'s boxed coalition mixes.
pub type ALeadTrialCache = TrialCache<u64, ALeadNode>;

/// An `A-LEADuni` protocol instance.
///
/// # Examples
///
/// ```
/// use fle_core::protocols::{ALeadUni, FleProtocol};
///
/// let exec = ALeadUni::new(16).with_seed(7).run_honest();
/// assert!(exec.outcome.elected().unwrap() < 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ALeadUni {
    n: usize,
    seed: u64,
    values: Option<Vec<u64>>,
}

impl ALeadUni {
    /// Creates an instance for a ring of `n` processors (seed 0).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "A-LEADuni needs n >= 2");
        Self {
            n,
            seed: 0,
            values: None,
        }
    }

    /// Sets the randomness seed for the honest processors' secret values.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins the honest secret values instead of drawing them from the
    /// seed — the injection point for [`crate::exact`]'s exhaustive input
    /// enumeration (the paper's probability space `χ = [n]^{n−k}`; entries
    /// at coalition positions are ignored once overridden).
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from `n` or a value is `≥ n`.
    pub fn with_values(mut self, values: Vec<u64>) -> Self {
        assert_eq!(values.len(), self.n, "need one value per processor");
        assert!(
            values.iter().all(|&d| d < self.n as u64),
            "values must be in [n]"
        );
        self.values = Some(values);
        self
    }

    /// The instance seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The pinned honest values installed by [`ALeadUni::with_values`],
    /// if any — read by the batch-lockstep builder.
    pub(crate) fn pinned_values(&self) -> Option<&[u64]> {
        self.values.as_deref()
    }

    /// Builds the honest node for position `id` (origin at 0) as a boxed
    /// trait object (for heterogeneous protocol/attack mixes).
    pub fn honest_node(&self, id: NodeId) -> Box<dyn Node<u64>> {
        Box::new(self.honest_ring_node(id))
    }

    /// Builds the honest node for position `id` as the concrete
    /// [`ALeadNode`] enum — the monomorphized form the batch fast path
    /// stores in a plain `Vec` (origin/normal dispatch is a branch, not a
    /// vtable).
    pub fn honest_ring_node(&self, id: NodeId) -> ALeadNode {
        let d = match &self.values {
            Some(vs) => vs[id],
            None => node_rng(self.seed, id).next_below(self.n as u64),
        };
        if id == 0 {
            ALeadNode::Origin(Origin {
                n: self.n as u64,
                d,
                sum: 0,
                round: 0,
            })
        } else {
            ALeadNode::Normal(Normal {
                n: self.n as u64,
                d,
                buffer: d,
                sum: 0,
                round: 0,
            })
        }
    }

    /// [`ALeadUni::honest_ring_node`] with the uniform arena-aware batch
    /// surface; `ALeadNode` holds no heap state, so the arena goes unused.
    pub fn honest_ring_node_in(&self, id: NodeId, _arena: &mut TrialArena) -> ALeadNode {
        self.honest_ring_node(id)
    }

    /// Only the origin wakes spontaneously.
    pub fn wakes(&self) -> Vec<NodeId> {
        vec![0]
    }

    /// Runs with the coalition positions replaced by `overrides`.
    pub fn run_with(&self, overrides: Vec<(NodeId, Box<dyn Node<u64>>)>) -> Execution {
        run_ring(self.n, |id| self.honest_node(id), overrides, &self.wakes())
    }

    /// [`ALeadUni::run_with`] through a per-thread [`TrialCache`] — the
    /// engine attack fast path (honest positions dispatch on the concrete
    /// [`ALeadNode`]; only coalition positions run `D`). Bit-identical to
    /// [`ALeadUni::run_with`] over equivalent overrides.
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from `n`, or an override id
    /// is out of range or duplicated.
    pub fn run_with_in<'c, D: Node<u64>>(
        &self,
        overrides: Vec<(NodeId, D)>,
        cache: &'c mut TrialCache<u64, ALeadNode, D>,
    ) -> &'c Execution {
        assert_eq!(
            cache.n(),
            self.n,
            "cache ring size must match the protocol's ring size"
        );
        cache.run(
            |id, arena| self.honest_ring_node_in(id, arena),
            overrides,
            ORIGIN_WAKES,
        )
    }

    /// Runs an honest execution through a reusable engine (the
    /// monomorphized batch-trial fast path; bit-identical to
    /// [`FleProtocol::run_honest`]).
    ///
    /// # Panics
    ///
    /// Panics if the engine's ring size differs from `n`.
    pub fn run_honest_in(&self, engine: &mut ring_sim::Engine<u64>) -> Execution {
        super::run_ring_honest_in(
            engine,
            self.n,
            |id| self.honest_ring_node(id),
            &self.wakes(),
        )
    }

    /// [`ALeadUni::run_with`] plus an instrumentation probe.
    pub fn run_with_probe(
        &self,
        overrides: Vec<(NodeId, Box<dyn Node<u64>>)>,
        probe: &mut dyn Probe<u64>,
    ) -> Execution {
        run_ring_probed(
            self.n,
            |id| self.honest_node(id),
            overrides,
            &self.wakes(),
            Some(probe),
        )
    }
}

impl FleProtocol for ALeadUni {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> &'static str {
        "A-LEADuni"
    }

    fn run_honest(&self) -> Execution {
        self.run_with(Vec::new())
    }
}

/// An honest `A-LEADuni` processor as a concrete type: the origin or a
/// normal (buffering) processor.
///
/// Built by [`ALeadUni::honest_ring_node`]; honest sweeps store a
/// `Vec<ALeadNode>`, so the engine's activation dispatch is a two-way
/// branch instead of a `Box<dyn Node>` vtable call.
#[derive(Debug, Clone)]
pub enum ALeadNode {
    /// The spontaneously-waking origin (processor 0).
    Origin(Origin),
    /// A normal processor with the one-round delay buffer.
    Normal(Normal),
}

/// `ALeadNode` keeps only scalar state — nothing to reclaim.
impl ArenaBacked for ALeadNode {}

impl Node<u64> for ALeadNode {
    fn on_wake(&mut self, ctx: &mut Ctx<'_, u64>) {
        match self {
            ALeadNode::Origin(o) => o.on_wake(ctx),
            ALeadNode::Normal(p) => p.on_wake(ctx),
        }
    }

    #[inline]
    fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
        match self {
            ALeadNode::Origin(o) => o.on_message(from, msg, ctx),
            ALeadNode::Normal(p) => p.on_message(from, msg, ctx),
        }
    }
}

/// The origin: sends its secret at wake-up, then forwards `n − 1` incoming
/// messages immediately ("behaves like a pipe"). Its `n`-th receive must be
/// its own secret coming full circle.
#[derive(Debug, Clone)]
pub struct Origin {
    n: u64,
    d: u64,
    sum: u64,
    round: u64,
}

impl Node<u64> for Origin {
    fn on_wake(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.send(self.d);
    }

    fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
        let m = fold_mod(msg, self.n);
        self.round += 1;
        self.sum = wrap_sub(self.sum + m, self.n);
        if self.round < self.n {
            ctx.send(m);
        } else if m == self.d {
            ctx.terminate(Some(self.sum));
        } else {
            ctx.abort();
        }
    }
}

/// A normal processor: starts with its secret in the buffer; on each
/// receive it sends the buffer and stores the new message — the one-round
/// delay that forces commitment before knowledge.
#[derive(Debug, Clone)]
pub struct Normal {
    n: u64,
    d: u64,
    buffer: u64,
    sum: u64,
    round: u64,
}

impl Node<u64> for Normal {
    fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
        let m = fold_mod(msg, self.n);
        ctx.send(self.buffer);
        self.buffer = m;
        self.round += 1;
        self.sum = wrap_sub(self.sum + m, self.n);
        if self.round == self.n {
            if m == self.d {
                ctx.terminate(Some(self.sum));
            } else {
                // Validation failed (paper line 13): abort with ⊥.
                ctx.abort();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::honest_data_values;
    use ring_sim::Outcome;

    #[test]
    fn honest_run_elects_sum_of_values() {
        for n in [2, 3, 4, 9, 32] {
            for seed in 0..5 {
                let p = ALeadUni::new(n).with_seed(seed);
                let expected = honest_data_values(seed, n).iter().sum::<u64>() % n as u64;
                assert_eq!(
                    p.run_honest().outcome,
                    Outcome::Elected(expected),
                    "n={n} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn message_complexity_is_n_squared() {
        let n = 12u64;
        let exec = ALeadUni::new(n as usize).with_seed(3).run_honest();
        assert_eq!(exec.stats.total_sent(), n * n);
        assert!(exec.stats.sent.iter().all(|&s| s == n));
        assert!(exec.stats.received.iter().all(|&r| r == n));
    }

    #[test]
    fn outcome_distribution_is_uniform_over_seeds() {
        let n = 8usize;
        let trials = 4000;
        let mut counts = vec![0u32; n];
        for seed in 0..trials {
            let out = ALeadUni::new(n).with_seed(seed).run_honest().outcome;
            counts[out.elected().expect("honest runs succeed") as usize] += 1;
        }
        let expect = trials as f64 / n as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.25,
                "counts={counts:?}"
            );
        }
    }

    #[test]
    fn wire_trace_matches_the_paper_structure() {
        // Section 3's trace: out_i = (d_i, in_i[1..]); the origin pipes,
        // normals delay by one. Check the first six messages exactly.
        use ring_sim::MessageLogProbe;
        let n = 4;
        let seed = 11;
        let p = ALeadUni::new(n).with_seed(seed);
        let d = honest_data_values(seed, n);
        let mut log = MessageLogProbe::new(6);
        let exec = p.run_with_probe(Vec::new(), &mut log);
        assert!(!exec.outcome.is_fail());
        assert_eq!(
            log.entries(),
            &[
                (0, 1, d[0]), // origin announces its secret
                (1, 2, d[1]), // each normal replies with its buffer
                (2, 3, d[2]),
                (3, 0, d[3]),
                (0, 1, d[3]), // origin forwards immediately (pipe)
                (1, 2, d[0]), // normal releases the delayed value
            ]
        );
        assert!(log.truncated());
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn tiny_ring_rejected() {
        let _ = ALeadUni::new(1);
    }
}
