//! `IndexedPhaseLead` — `PhaseAsyncLead` for non-consecutive ids (paper
//! Appendix G).
//!
//! Sections 6/E assume processor `i` sits at ring position `i`, so
//! everyone knows which round it validates. Appendix G removes the
//! assumption with an *indexing phase*: the origin sends a counter `1`;
//! each processor records the value it receives as its index, increments,
//! and forwards. The counter returns to the origin as `n`, which doubles
//! as an integrity check. Thereafter the protocol is exactly
//! `PhaseAsyncLead` with the *learned* index in place of the id: the
//! processor with index `i` validates round `i + 1`, and the appendix's
//! observation is that the resilience proof carries over because segment
//! validator continuity and validate-exactly-once still hold.
//!
//! With honest processors the learned index equals the ring position, so
//! an honest execution elects **the same leader** as `PhaseAsyncLead`
//! with the same seed and function key — which the tests check.

use super::{node_rng, run_ring, FleProtocol};
use crate::randfn::{PhaseParams, RandomFn};
use ring_sim::{Ctx, Execution, Node, NodeId};

/// A message of the indexed phase protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexedMsg {
    /// The indexing counter (pre-phase).
    Index(u64),
    /// A data message (odd positions of each round).
    Data(u64),
    /// A validation message (even positions of each round).
    Val(u64),
}

/// The Appendix G variant of [`crate::protocols::PhaseAsyncLead`].
///
/// # Examples
///
/// ```
/// use fle_core::protocols::{FleProtocol, IndexedPhaseLead, PhaseAsyncLead};
///
/// let indexed = IndexedPhaseLead::new(12).with_seed(5).with_fn_key(9);
/// let plain = PhaseAsyncLead::new(12).with_seed(5).with_fn_key(9);
/// // Same seed, same f: the indexing phase changes nothing observable.
/// assert_eq!(
///     indexed.run_honest().outcome,
///     plain.run_honest().outcome,
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexedPhaseLead {
    params: PhaseParams,
    seed: u64,
    f: RandomFn,
}

impl IndexedPhaseLead {
    /// Creates an instance for a ring of `n` processors (seed 0, `f`
    /// keyed 0).
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 4, "IndexedPhaseLead needs n >= 4");
        Self {
            params: PhaseParams::for_ring(n),
            seed: 0,
            f: RandomFn::new(0, n as u64),
        }
    }

    /// Sets the randomness seed for the honest processors' values.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Re-keys the random function `f`.
    pub fn with_fn_key(mut self, key: u64) -> Self {
        self.f = RandomFn::new(key, self.params.n as u64);
        self
    }

    /// The protocol parameters `(n, m, l)`.
    pub fn params(&self) -> PhaseParams {
        self.params
    }

    /// Builds the honest node for ring position `pos`. Only the node's
    /// *randomness* is derived from `pos` (its physical identity); all
    /// protocol decisions use the index learned in the pre-phase.
    pub fn honest_node(&self, pos: NodeId) -> Box<dyn Node<IndexedMsg>> {
        let mut rng = node_rng(self.seed, pos);
        let d = rng.next_below(self.params.n as u64);
        let st = IndexedState {
            params: self.params,
            f: self.f,
            rng,
            d,
            v_own: 0,
            buffer: d,
            index: None,
            round: 0,
            expect_data: true,
            data: vec![0; self.params.n],
            vals: vec![0; self.params.n + 1],
        };
        if pos == 0 {
            Box::new(IndexedOrigin { s: st })
        } else {
            Box::new(IndexedNormal { s: st })
        }
    }

    /// Only the origin wakes spontaneously.
    pub fn wakes(&self) -> Vec<NodeId> {
        vec![0]
    }

    /// Runs with the coalition positions replaced by `overrides`.
    pub fn run_with(&self, overrides: Vec<(NodeId, Box<dyn Node<IndexedMsg>>)>) -> Execution {
        run_ring(
            self.params.n,
            |pos| self.honest_node(pos),
            overrides,
            &self.wakes(),
        )
    }
}

impl FleProtocol for IndexedPhaseLead {
    fn n(&self) -> usize {
        self.params.n
    }

    fn name(&self) -> &'static str {
        "IndexedPhaseLead"
    }

    fn run_honest(&self) -> Execution {
        self.run_with(Vec::new())
    }
}

struct IndexedState {
    params: PhaseParams,
    f: RandomFn,
    rng: ring_sim::rng::SplitMix64,
    d: u64,
    v_own: u64,
    buffer: u64,
    /// Learned in the indexing phase; `None` until then.
    index: Option<usize>,
    round: usize,
    expect_data: bool,
    data: Vec<u64>,
    vals: Vec<u64>,
}

impl IndexedState {
    fn validator_round(&self) -> usize {
        self.index.expect("index learned before round 1") + 1
    }

    fn output(&self) -> u64 {
        self.f
            .eval(&self.data, &self.vals[1..=self.params.vals_in_f()])
    }
}

/// A normal processor: waits for its index, then runs the PhaseAsyncLead
/// state machine keyed on the learned index.
struct IndexedNormal {
    s: IndexedState,
}

impl Node<IndexedMsg> for IndexedNormal {
    fn on_message(&mut self, _from: NodeId, msg: IndexedMsg, ctx: &mut Ctx<'_, IndexedMsg>) {
        let s = &mut self.s;
        let n = s.params.n;
        match msg {
            IndexedMsg::Index(i) if s.index.is_none() => {
                if i as usize >= n {
                    // A counter that exceeds the known ring size is a
                    // detected deviation.
                    ctx.abort();
                    return;
                }
                s.index = Some(i as usize);
                ctx.send(IndexedMsg::Index(i + 1));
            }
            IndexedMsg::Data(x) if s.index.is_some() && s.expect_data => {
                s.expect_data = false;
                let x = x % n as u64;
                s.round += 1;
                ctx.send(IndexedMsg::Data(s.buffer));
                s.buffer = x;
                let idx = s.index.expect("checked");
                s.data[(idx + n - (s.round % n)) % n] = x;
                if s.round == s.validator_round() {
                    s.v_own = s.rng.next_below(s.params.m);
                    ctx.send(IndexedMsg::Val(s.v_own));
                }
                if s.round == n && x != s.d {
                    ctx.abort();
                }
            }
            IndexedMsg::Val(y) if s.index.is_some() && !s.expect_data => {
                s.expect_data = true;
                let y = y % s.params.m;
                if s.round == s.validator_round() {
                    if y != s.v_own {
                        ctx.abort();
                        return;
                    }
                    s.vals[s.round] = s.v_own;
                } else {
                    s.vals[s.round] = y;
                    ctx.send(IndexedMsg::Val(y));
                }
                if s.round == n {
                    ctx.terminate(Some(s.output()));
                }
            }
            _ => ctx.abort(),
        }
    }
}

/// The origin: index 0 by fiat; launches the counter, then the protocol,
/// and absorbs the counter's return (validating that it equals `n`).
struct IndexedOrigin {
    s: IndexedState,
    // Set once the counter came back as n.
}

impl Node<IndexedMsg> for IndexedOrigin {
    fn on_wake(&mut self, ctx: &mut Ctx<'_, IndexedMsg>) {
        let s = &mut self.s;
        s.index = Some(0);
        ctx.send(IndexedMsg::Index(1));
        s.data[0] = s.d;
        s.round = 1;
        ctx.send(IndexedMsg::Data(s.d));
        s.v_own = s.rng.next_below(s.params.m);
        ctx.send(IndexedMsg::Val(s.v_own));
    }

    fn on_message(&mut self, _from: NodeId, msg: IndexedMsg, ctx: &mut Ctx<'_, IndexedMsg>) {
        let s = &mut self.s;
        let n = s.params.n;
        match msg {
            IndexedMsg::Index(i) => {
                // The counter returning; anything but n is a deviation.
                if i as usize != n {
                    ctx.abort();
                }
            }
            IndexedMsg::Data(x) if s.expect_data => {
                s.expect_data = false;
                let x = x % n as u64;
                s.data[(n - (s.round % n)) % n] = x;
                s.buffer = x;
                if s.round == n && x != s.d {
                    ctx.abort();
                }
            }
            IndexedMsg::Val(y) if !s.expect_data => {
                s.expect_data = true;
                let y = y % s.params.m;
                if s.round == 1 {
                    if y != s.v_own {
                        ctx.abort();
                        return;
                    }
                    s.vals[1] = s.v_own;
                } else {
                    s.vals[s.round] = y;
                    ctx.send(IndexedMsg::Val(y));
                }
                if s.round == n {
                    ctx.terminate(Some(s.output()));
                } else {
                    ctx.send(IndexedMsg::Data(s.buffer));
                    s.round += 1;
                }
            }
            _ => ctx.abort(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::PhaseAsyncLead;
    use ring_sim::Outcome;

    #[test]
    fn matches_phase_async_lead_on_every_seed() {
        for n in [4, 9, 16, 25] {
            for seed in 0..6 {
                let indexed = IndexedPhaseLead::new(n).with_seed(seed).with_fn_key(3);
                let plain = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(3);
                assert_eq!(
                    indexed.run_honest().outcome,
                    plain.run_honest().outcome,
                    "n={n} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn message_complexity_is_2n_plus_1_per_processor() {
        let n = 12u64;
        let exec = IndexedPhaseLead::new(n as usize).with_seed(2).run_honest();
        assert!(matches!(exec.outcome, Outcome::Elected(_)));
        // 2n protocol messages plus one indexing message each.
        assert!(exec.stats.sent.iter().all(|&s| s == 2 * n + 1));
    }

    #[test]
    fn corrupted_counter_is_detected() {
        struct CounterCheat;
        impl Node<IndexedMsg> for CounterCheat {
            fn on_message(
                &mut self,
                _from: NodeId,
                msg: IndexedMsg,
                ctx: &mut Ctx<'_, IndexedMsg>,
            ) {
                match msg {
                    // Skip an index: claim our successor's slot.
                    IndexedMsg::Index(i) => ctx.send(IndexedMsg::Index(i + 2)),
                    other => ctx.send(other),
                }
            }
        }
        let p = IndexedPhaseLead::new(10).with_seed(1).with_fn_key(1);
        let exec = p.run_with(vec![(4, Box::new(CounterCheat))]);
        assert!(exec.outcome.is_fail(), "{:?}", exec.outcome);
    }

    #[test]
    fn oversized_counter_aborts_immediately() {
        struct BigCounter;
        impl Node<IndexedMsg> for BigCounter {
            fn on_message(
                &mut self,
                _from: NodeId,
                msg: IndexedMsg,
                ctx: &mut Ctx<'_, IndexedMsg>,
            ) {
                match msg {
                    IndexedMsg::Index(_) => ctx.send(IndexedMsg::Index(999)),
                    other => ctx.send(other),
                }
            }
        }
        let p = IndexedPhaseLead::new(8).with_seed(0).with_fn_key(0);
        let exec = p.run_with(vec![(3, Box::new(BigCounter))]);
        assert!(exec.outcome.is_fail());
    }
}
