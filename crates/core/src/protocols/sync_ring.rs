//! `SyncRingLead` — fair leader election on a *synchronous* ring,
//! resilient to `n − 1` rational agents (paper Section 1.1's second easy
//! scenario, from Abraham et al.).
//!
//! In lock-step rounds, every processor must send exactly one value per
//! round: its secret `d_i` at round 0, and afterwards a forward of what it
//! just received. After `n` rounds each processor has seen every secret
//! exactly once and its own must come full circle last; it elects
//! `Σ d_i (mod n)`.
//!
//! Synchrony is the entire defence. All round-0 messages are committed
//! *simultaneously*, so no processor can wait out the others' secrets the
//! way the Claim B.1 adversary does on the asynchronous ring — silence at
//! any round is immediately visible to the successor, which aborts. The
//! only adversarial freedom left is corrupting forwarded values, and every
//! such corruption either breaks some processor's full-circle validation
//! or splits the honest outputs, failing the election (cf. Lemma 3.3's
//! conditions). The last free message an adversary sends is committed one
//! round before it learns its successor-side secrets, mirroring the
//! Claim D.1 argument with `l = 1`.

use super::node_rng;
use ring_sim::sync::{SyncCtx, SyncExecution, SyncNode, SyncSim};
use ring_sim::{NodeId, Topology};

/// A `SyncRingLead` protocol instance.
///
/// # Examples
///
/// ```
/// use fle_core::protocols::SyncRingLead;
///
/// let exec = SyncRingLead::new(8).with_seed(5).run_honest();
/// assert!(exec.outcome.elected().unwrap() < 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncRingLead {
    n: usize,
    seed: u64,
}

impl SyncRingLead {
    /// Creates an instance for a synchronous ring of `n` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "SyncRingLead needs n >= 2");
        Self { n, seed: 0 }
    }

    /// Sets the randomness seed for the honest secret values.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Ring size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Protocol name for tables.
    pub fn name(&self) -> &'static str {
        "SyncRingLead"
    }

    /// Builds the honest node for position `id`.
    pub fn honest_node(&self, id: NodeId) -> SyncRingNode {
        SyncRingNode {
            n: self.n as u64,
            successor: (id + 1) % self.n,
            d: node_rng(self.seed, id).next_below(self.n as u64),
            sum: 0,
        }
    }

    /// Runs with coalition positions replaced by `overrides`.
    ///
    /// # Panics
    ///
    /// Panics if an override id is out of range or duplicated.
    pub fn run_with(&self, mut overrides: Vec<(NodeId, Box<dyn SyncNode<u64>>)>) -> SyncExecution {
        overrides.sort_by_key(|(id, _)| *id);
        let mut sim = SyncSim::new(Topology::ring(self.n)).max_rounds(self.n + 4);
        let mut next = overrides.into_iter().peekable();
        for id in 0..self.n {
            if next.peek().is_some_and(|(o, _)| *o == id) {
                let (_, node) = next.next().expect("peeked");
                sim = sim.boxed_node(id, node);
            } else {
                sim = sim.node(id, self.honest_node(id));
            }
        }
        assert!(
            next.next().is_none(),
            "override id out of range or duplicated"
        );
        sim.run()
    }

    /// Runs an honest execution.
    pub fn run_honest(&self) -> SyncExecution {
        self.run_with(Vec::new())
    }
}

/// The honest synchronous-ring processor.
#[derive(Debug, Clone)]
pub struct SyncRingNode {
    n: u64,
    successor: NodeId,
    d: u64,
    sum: u64,
}

impl SyncNode<u64> for SyncRingNode {
    fn on_round(&mut self, round: usize, inbox: &[(NodeId, u64)], ctx: &mut SyncCtx<'_, u64>) {
        if round == 0 {
            // Commit the secret before anything can be learned.
            ctx.send_to(self.successor, self.d);
            return;
        }
        // Silence (or chatter) from the predecessor is a detected deviation.
        let [(_, msg)] = inbox else {
            ctx.abort();
            return;
        };
        let v = msg % self.n;
        if (round as u64) < self.n {
            self.sum = (self.sum + v) % self.n;
            ctx.send_to(self.successor, v);
        } else {
            // Round n: the value coming full circle must be our own.
            if v == self.d {
                ctx.terminate(Some((self.sum + self.d) % self.n));
            } else {
                ctx.abort();
            }
        }
    }
}

/// An adversary that stays silent at round 0, hoping to pick its value
/// after seeing others' — the Claim B.1 rushing strategy, which synchrony
/// defeats (its successor sees an empty round-1 inbox and aborts).
#[derive(Debug, Clone, Copy, Default)]
pub struct SyncRingWaiter;

impl SyncNode<u64> for SyncRingWaiter {
    fn on_round(&mut self, round: usize, inbox: &[(NodeId, u64)], ctx: &mut SyncCtx<'_, u64>) {
        // Round 0: stay silent. Later: behave like a pipe and output 0,
        // trying to look busy.
        if round > 0 {
            if let [(_, msg)] = inbox {
                let to = ctx.out_neighbors().to_vec();
                ctx.send_to(to[0], *msg);
            } else {
                ctx.terminate(Some(0));
            }
        }
    }
}

/// An adversary that forwards a corrupted value at a chosen round —
/// detected by the full-circle validation (Lemma 3.3 condition 3).
#[derive(Debug, Clone)]
pub struct SyncRingCorruptor {
    inner: SyncRingNode,
    corrupt_round: usize,
}

impl SyncRingCorruptor {
    /// Wraps the honest behaviour of position `id` of `protocol`, but adds
    /// 1 (mod n) to the value it forwards at `corrupt_round`.
    pub fn new(protocol: &SyncRingLead, id: NodeId, corrupt_round: usize) -> Self {
        Self {
            inner: protocol.honest_node(id),
            corrupt_round,
        }
    }
}

impl SyncNode<u64> for SyncRingCorruptor {
    fn on_round(&mut self, round: usize, inbox: &[(NodeId, u64)], ctx: &mut SyncCtx<'_, u64>) {
        if round == self.corrupt_round && round > 0 {
            if let [(_, msg)] = inbox {
                let v = (msg + 1) % self.inner.n;
                self.inner.sum = (self.inner.sum + msg % self.inner.n) % self.inner.n;
                ctx.send_to(self.inner.successor, v);
                return;
            }
        }
        self.inner.on_round(round, inbox, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::honest_data_values;
    use ring_sim::Outcome;

    #[test]
    fn honest_run_elects_the_sum() {
        for n in [2usize, 3, 5, 16] {
            for seed in 0..4 {
                let p = SyncRingLead::new(n).with_seed(seed);
                let expect = honest_data_values(seed, n).iter().sum::<u64>() % n as u64;
                let exec = p.run_honest();
                assert_eq!(exec.outcome, Outcome::Elected(expect), "n={n} seed={seed}");
                assert_eq!(exec.messages, (n * n) as u64);
            }
        }
    }

    #[test]
    fn outcome_is_uniform_over_seeds() {
        let n = 8usize;
        let mut counts = vec![0u32; n];
        for seed in 0..2000 {
            let out = SyncRingLead::new(n).with_seed(seed).run_honest().outcome;
            counts[out.elected().expect("honest") as usize] += 1;
        }
        let expect = 2000.0 / n as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < expect * 0.3, "{counts:?}");
        }
    }

    #[test]
    fn waiting_adversary_is_detected() {
        // The Claim B.1 rushing strategy fails the whole run instead of
        // biasing it: synchrony makes silence visible.
        let p = SyncRingLead::new(6).with_seed(2);
        let exec = p.run_with(vec![(3, Box::new(SyncRingWaiter))]);
        assert!(exec.outcome.is_fail());
    }

    #[test]
    fn corrupting_any_round_is_detected() {
        let n = 6;
        for round in 1..n {
            let p = SyncRingLead::new(n).with_seed(7);
            let bad = SyncRingCorruptor::new(&p, 2, round);
            let exec = p.run_with(vec![(2, Box::new(bad))]);
            assert!(
                exec.outcome.is_fail(),
                "corruption at round {round} undetected"
            );
        }
    }

    #[test]
    fn nearly_full_coalition_cannot_bias() {
        // n − 1 fixed-value adversaries: the lone honest processor's secret
        // still makes every outcome equally likely over seeds.
        let n = 4usize;
        let mut counts = vec![0u32; n];
        for seed in 0..800 {
            let p = SyncRingLead::new(n).with_seed(seed);
            let overrides: Vec<(NodeId, Box<dyn SyncNode<u64>>)> = (1..n)
                .map(|id| {
                    let mut inner = p.honest_node(id);
                    inner.d = 0; // the coalition pins its values
                    (id, Box::new(inner) as Box<dyn SyncNode<u64>>)
                })
                .collect();
            let exec = p.run_with(overrides);
            counts[exec.outcome.elected().expect("valid run") as usize] += 1;
        }
        let expect = 800.0 / n as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < expect * 0.3, "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn tiny_ring_rejected() {
        let _ = SyncRingLead::new(1);
    }
}
