//! The paper's ring protocols and a harness for running them, honestly or
//! under adversarial deviations.
//!
//! * [`BasicLead`] — Appendix B's non-resilient strawman.
//! * [`ALeadUni`] — Abraham et al.'s buffered protocol (paper Section 3).
//! * [`PhaseAsyncLead`] — the paper's Θ(√n)-resilient protocol (Section 6).
//! * [`PhaseSumLead`] — the Appendix E.4 ablation (phase validation but
//!   `sum` instead of a random `f`).
//! * [`SyncLead`] — the synchronous `(n−1)`-resilient contrast protocol
//!   from the related work (paper Section 1.1).
//! * [`SyncRingLead`] — the synchronous *ring* variant: same `(n−1)`
//!   resilience, delivered purely by round-synchrony on the ring.
//!
//! All protocols use 0-indexed processor ids `0..n` with the origin at 0
//! and outputs in `[0, n)`; see DESIGN.md §4 for the index translation from
//! the paper's `[1, n]`.

mod a_lead_uni;
mod basic_lead;
mod batch;
mod phase;
mod phase_indexed;
mod sync_lead;
mod sync_ring;
mod wakeup;

pub use a_lead_uni::{ALeadNode, ALeadTrialCache, ALeadUni};
pub use basic_lead::{BasicLead, BasicNode, BasicTrialCache};
pub use batch::{
    run_ring_honest_batch_into, ALeadBatchCache, BasicBatchCache, BatchALeadNode, BatchBasicNode,
    BatchPhaseNode, PhaseBatchCache,
};
pub use phase::{phase_async_builds, PhaseAsyncLead, PhaseMsg, PhaseNode, PhaseSumLead};
pub use phase_indexed::{IndexedMsg, IndexedPhaseLead};
pub use sync_lead::{SyncFixedValue, SyncLead, SyncWaitAndCancel};
pub use sync_ring::{SyncRingCorruptor, SyncRingLead, SyncRingNode, SyncRingWaiter};
pub use wakeup::{WakeLead, WakeMsg, WakeNode};

use ring_sim::rng::SplitMix64;
use ring_sim::{
    default_step_limit, ArenaBacked, Engine, Execution, FaultConfig, FaultPlan, FifoScheduler,
    Node, NodeId, Probe, SimBuilder, TimedNetConfig, TimedScheduler, Topology, TrialArena,
};

/// Reduces `x` into `[0, n)` without paying a hardware division in the
/// common case. Protocol message handlers fold every incoming value with
/// this: honest senders always emit in-range values, so the branch
/// predicts perfectly and the division only runs on adversarial
/// out-of-range input. Bit-identical to `x % n` for all inputs.
#[inline(always)]
pub(crate) fn fold_mod(x: u64, n: u64) -> u64 {
    if x < n {
        x
    } else {
        x % n
    }
}

/// `a % n` as a single conditional subtract — bit-identical whenever
/// `a < 2n`, which the protocol arithmetic guarantees at every call site
/// (both summands already lie in `[0, n)`, or one is `< n` and the other
/// `≤ n`). Used on per-delivery paths where a hardware division would
/// dominate the activation cost.
#[inline(always)]
pub(crate) fn wrap_sub(a: u64, n: u64) -> u64 {
    debug_assert!(a < 2 * n);
    if a >= n {
        a - n
    } else {
        a
    }
}

/// [`wrap_sub`] over `usize` ring indices.
#[inline(always)]
pub(crate) fn wrap_sub_usize(a: usize, n: usize) -> usize {
    debug_assert!(a < 2 * n);
    if a >= n {
        a - n
    } else {
        a
    }
}

/// The wake list shared by the origin-paced ring protocols (`A-LEADuni`
/// and the phase family): only processor 0 wakes spontaneously. A `const`
/// so per-trial attack runs need no wake-list allocation.
pub(crate) const ORIGIN_WAKES: &[NodeId] = &[0];

/// Common interface of the ring fair-leader-election protocols, used by
/// the experiment harness.
pub trait FleProtocol {
    /// Ring size.
    fn n(&self) -> usize;

    /// Human-readable protocol name.
    fn name(&self) -> &'static str;

    /// Runs an honest execution (all processors follow the protocol).
    fn run_honest(&self) -> Execution;
}

/// Derives the secret data values `d_i` that honest processors draw for a
/// protocol instance seeded with `seed`. Exposed so tests can predict the
/// honest sum; attack implementations never call this (the adversary does
/// not know honest secrets).
pub fn honest_data_values(seed: u64, n: usize) -> Vec<u64> {
    (0..n)
        .map(|i| node_rng(seed, i).next_below(n as u64))
        .collect()
}

/// The per-node random stream: node `i` of an instance seeded `seed` draws
/// all its randomness from this generator, data value first.
pub(crate) fn node_rng(seed: u64, id: NodeId) -> SplitMix64 {
    SplitMix64::new(seed).derive(id as u64)
}

/// Runs a ring protocol with some nodes replaced by adversarial behaviours.
///
/// `honest` builds the protocol's honest node for an id; `overrides` maps
/// coalition positions to their deviating strategies. `wakes` lists the
/// spontaneously-waking nodes in wake order (for the protocols here: only
/// the origin, except `Basic-LEAD` which wakes everyone).
///
/// # Panics
///
/// Panics if an override id is out of range or duplicated (programming
/// error in the attack harness).
pub fn run_ring<M: 'static>(
    n: usize,
    honest: impl Fn(NodeId) -> Box<dyn Node<M>>,
    overrides: Vec<(NodeId, Box<dyn Node<M>>)>,
    wakes: &[NodeId],
) -> Execution {
    run_ring_probed(n, honest, overrides, wakes, None)
}

/// [`run_ring`] through a reusable [`Engine`] — the batch-trial entry
/// point used by `fle-harness`.
///
/// Produces bit-identical [`Execution`]s to [`run_ring`] on the same
/// inputs, but reuses the engine's preallocated link queues and adjacency
/// tables instead of rebuilding them per trial. The engine must simulate a
/// unidirectional ring of `n` nodes (typically
/// `Engine::new(Topology::ring(n))`, created once per worker thread).
///
/// # Panics
///
/// Panics if the engine's topology size differs from `n`, or if an
/// override id is out of range or duplicated.
pub fn run_ring_in<M: 'static>(
    engine: &mut Engine<M>,
    n: usize,
    honest: impl Fn(NodeId) -> Box<dyn Node<M>>,
    overrides: Vec<(NodeId, Box<dyn Node<M>>)>,
    wakes: &[NodeId],
) -> Execution {
    assert_eq!(
        engine.topology().len(),
        n,
        "engine topology size must match the protocol's ring size"
    );
    let mut nodes = assemble_ring_nodes(n, honest, overrides);
    engine.run(
        &mut nodes,
        wakes,
        &mut FifoScheduler::new(),
        default_step_limit(n),
    )
}

/// The honest-only, monomorphized variant of [`run_ring_in`]: node
/// behaviours are a homogeneous `N` (each protocol's honest node enum), so
/// the engine loop dispatches statically — no `Box`, no vtable. All four
/// protocols' `run_honest_in` route through here.
///
/// Produces bit-identical [`Execution`]s to the boxed [`run_ring_in`] with
/// the same behaviours.
///
/// # Panics
///
/// Panics if the engine's topology size differs from `n`.
pub fn run_ring_honest_in<M, N: Node<M>>(
    engine: &mut Engine<M>,
    n: usize,
    honest: impl FnMut(NodeId) -> N,
    wakes: &[NodeId],
) -> Execution {
    let mut out = Execution::default();
    run_ring_honest_into(
        engine,
        n,
        honest,
        wakes,
        &mut Vec::new(),
        &mut FifoScheduler::new(),
        &mut out,
    );
    out
}

/// [`run_ring_honest_in`] with caller-owned node, scheduler and result
/// buffers — the zero-allocation batch loop `fle-harness` sweeps run on.
///
/// `nodes_buf` is cleared and refilled (capacity retained), the
/// scheduler's token storage is cleared and reused, and `out` is
/// overwritten in place. A worker that reuses an [`Engine`], one
/// `nodes_buf`, one [`FifoScheduler`] and one [`Execution`] across a batch
/// performs no per-trial allocation beyond what the node behaviours
/// themselves do.
///
/// The scheduler parameter is concretely FIFO: honest ring executions are
/// defined over the fair global-send-order schedule, and pinning the type
/// here keeps every honest entry point on the identical interleaving.
///
/// # Panics
///
/// Panics if the engine's topology size differs from `n`.
pub fn run_ring_honest_into<M, N: Node<M>>(
    engine: &mut Engine<M>,
    n: usize,
    honest: impl FnMut(NodeId) -> N,
    wakes: &[NodeId],
    nodes_buf: &mut Vec<N>,
    scheduler: &mut FifoScheduler,
    out: &mut Execution,
) {
    assert_eq!(
        engine.topology().len(),
        n,
        "engine topology size must match the protocol's ring size"
    );
    nodes_buf.clear();
    nodes_buf.extend((0..n).map(honest));
    engine.run_mono_into(nodes_buf, wakes, scheduler, default_step_limit(n), out);
}

/// [`run_ring_honest_into`] with node state drawn from (and reclaimed
/// into) a per-worker [`TrialArena`] — the fully allocation-free batch
/// loop: with engine, node, scheduler, result *and* arena buffers reused,
/// a steady-state trial touches the heap zero times, node construction
/// included.
///
/// `honest(id, arena)` builds node `id`, drawing any trial-lifetime
/// buffers from `arena` (e.g. [`PhaseAsyncLead::honest_ring_node_in`]);
/// after the run every node's buffers are reclaimed via
/// [`ArenaBacked::reclaim`]. Produces bit-identical [`Execution`]s to
/// [`run_ring_honest_into`] over the equivalent builders.
///
/// # Panics
///
/// Panics if the engine's topology size differs from `n`.
#[allow(clippy::too_many_arguments)] // the worker's reusable buffers, spelled out
pub fn run_ring_honest_pooled_into<M, N: Node<M> + ArenaBacked>(
    engine: &mut Engine<M>,
    n: usize,
    mut honest: impl FnMut(NodeId, &mut TrialArena) -> N,
    wakes: &[NodeId],
    nodes_buf: &mut Vec<N>,
    scheduler: &mut FifoScheduler,
    arena: &mut TrialArena,
    out: &mut Execution,
) {
    assert_eq!(
        engine.topology().len(),
        n,
        "engine topology size must match the protocol's ring size"
    );
    arena.reset();
    nodes_buf.clear();
    nodes_buf.extend((0..n).map(|id| honest(id, arena)));
    engine.run_mono_into(nodes_buf, wakes, scheduler, default_step_limit(n), out);
    for node in nodes_buf.iter_mut() {
        node.reclaim(arena);
    }
}

/// [`run_ring_honest_pooled_into`] on the engine's virtual-clock timed
/// path: deliveries follow the per-link latency / bandwidth / loss /
/// duplication profiles of `net`, with the network noise drawn from
/// `seed`'s dedicated stream (protocol node randomness is untouched).
///
/// With the all-zero [`TimedNetConfig`] this produces bit-identical
/// [`Execution`]s to [`run_ring_honest_pooled_into`] — the differential
/// anchor `tests/timed_paths.rs` pins per protocol.
///
/// # Panics
///
/// Panics if the engine's topology size differs from `n`.
#[allow(clippy::too_many_arguments)] // the worker's reusable buffers, spelled out
pub fn run_ring_honest_timed_into<M: Clone, N: Node<M> + ArenaBacked>(
    engine: &mut Engine<M>,
    n: usize,
    mut honest: impl FnMut(NodeId, &mut TrialArena) -> N,
    wakes: &[NodeId],
    nodes_buf: &mut Vec<N>,
    timed: &mut TimedScheduler<M>,
    net: &TimedNetConfig,
    seed: u64,
    arena: &mut TrialArena,
    out: &mut Execution,
) {
    assert_eq!(
        engine.topology().len(),
        n,
        "engine topology size must match the protocol's ring size"
    );
    arena.reset();
    nodes_buf.clear();
    nodes_buf.extend((0..n).map(|id| honest(id, arena)));
    engine.run_timed_mono_into(
        nodes_buf,
        wakes,
        timed,
        net,
        seed,
        default_step_limit(n),
        out,
    );
    for node in nodes_buf.iter_mut() {
        node.reclaim(arena);
    }
}

/// One position's behaviour in a heterogeneous honest/deviant ring: the
/// concrete honest node type of the protocol, or a deviating strategy.
///
/// This is the attack fast path's storage form. An attacked ring is
/// almost entirely honest (`n − k` of `n` positions), so dispatching
/// through this enum means the honest majority of activations take a
/// predictable branch to a concrete, inlinable node — only the coalition's
/// activations pay `D`'s cost. `D` is `Box<dyn Node<M>>` for coalition
/// mixes built at runtime; single-deviator attacks can instantiate `D`
/// with their concrete deviator type and run with no boxing at all.
pub enum MixNode<N, D> {
    /// An honest position, as the protocol's concrete node type.
    Honest(N),
    /// A coalition position running a deviating strategy.
    Deviant(D),
}

impl<M, N: Node<M>, D: Node<M>> Node<M> for MixNode<N, D> {
    fn on_wake(&mut self, ctx: &mut ring_sim::Ctx<'_, M>) {
        match self {
            MixNode::Honest(h) => h.on_wake(ctx),
            MixNode::Deviant(d) => d.on_wake(ctx),
        }
    }

    #[inline]
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut ring_sim::Ctx<'_, M>) {
        match self {
            MixNode::Honest(h) => h.on_message(from, msg, ctx),
            MixNode::Deviant(d) => d.on_message(from, msg, ctx),
        }
    }
}

/// Only the honest side holds arena-drawn state; deviators own their
/// buffers outright (they are rebuilt per trial by the attack planner).
impl<N: ArenaBacked, D> ArenaBacked for MixNode<N, D> {
    fn reclaim(&mut self, arena: &mut TrialArena) {
        if let MixNode::Honest(h) = self {
            h.reclaim(arena);
        }
    }
}

/// [`run_ring_in`] for adversarial mixes on the engine fast path: honest
/// positions run the protocol's concrete node type `N` (branch dispatch,
/// arena-backed state), coalition positions run `D` — boxed for runtime
/// mixes, concrete for single-deviator attacks.
///
/// Produces bit-identical [`Execution`]s to [`run_ring`] /
/// `SimBuilder::run` over equivalent behaviours. This is the convenience
/// form that allocates its working buffers per call; batch sweeps use
/// [`run_ring_attack_into`] (typically through a [`TrialCache`]) to reuse
/// them.
///
/// # Examples
///
/// ```
/// use fle_core::protocols::{run_ring_attack_in, BasicLead, FleProtocol};
/// use ring_sim::{Engine, Node, Topology};
///
/// let n = 5;
/// let p = BasicLead::new(n).with_seed(7);
/// let mut engine = Engine::new(Topology::ring(n));
/// // An empty coalition is the honest run, now through the cached engine:
/// let exec = run_ring_attack_in(
///     &mut engine,
///     n,
///     |id, arena| p.honest_ring_node_in(id, arena),
///     Vec::<(usize, Box<dyn Node<u64>>)>::new(),
///     &p.wakes(),
/// );
/// assert_eq!(exec, p.run_honest());
/// ```
///
/// # Panics
///
/// Panics if the engine's topology size differs from `n`, or if an
/// override id is out of range or duplicated.
pub fn run_ring_attack_in<M, N: Node<M> + ArenaBacked, D: Node<M>>(
    engine: &mut Engine<M>,
    n: usize,
    honest: impl FnMut(NodeId, &mut TrialArena) -> N,
    overrides: Vec<(NodeId, D)>,
    wakes: &[NodeId],
) -> Execution {
    let mut out = Execution::default();
    run_ring_attack_into(
        engine,
        n,
        honest,
        overrides,
        wakes,
        &mut Vec::new(),
        &mut FifoScheduler::new(),
        &mut TrialArena::new(),
        &mut out,
    );
    out
}

/// [`run_ring_attack_in`] with caller-owned node, scheduler, arena and
/// result buffers — the zero-allocation attack batch loop. Per trial, the
/// only heap traffic left is what the attack itself builds (its deviator
/// nodes, boxed when the mix is truly heterogeneous).
///
/// # Panics
///
/// Panics if the engine's topology size differs from `n`, or if an
/// override id is out of range or duplicated.
#[allow(clippy::too_many_arguments)] // the worker's reusable buffers, spelled out
pub fn run_ring_attack_into<M, N: Node<M> + ArenaBacked, D: Node<M>>(
    engine: &mut Engine<M>,
    n: usize,
    mut honest: impl FnMut(NodeId, &mut TrialArena) -> N,
    overrides: Vec<(NodeId, D)>,
    wakes: &[NodeId],
    nodes_buf: &mut Vec<MixNode<N, D>>,
    scheduler: &mut FifoScheduler,
    arena: &mut TrialArena,
    out: &mut Execution,
) {
    assert_eq!(
        engine.topology().len(),
        n,
        "engine topology size must match the protocol's ring size"
    );
    arena.reset();
    nodes_buf.clear();
    merge_ring_overrides(n, overrides, |id, deviant| {
        nodes_buf.push(match deviant {
            Some(node) => MixNode::Deviant(node),
            None => MixNode::Honest(honest(id, arena)),
        })
    });
    engine.run_mono_into(nodes_buf, wakes, scheduler, default_step_limit(n), out);
    for node in nodes_buf.iter_mut() {
        node.reclaim(arena);
    }
}

/// [`run_ring_attack_into`] on the engine's virtual-clock timed path —
/// the adversarial twin of [`run_ring_honest_timed_into`]. Attack sweeps
/// with a timed schedule route here through [`TrialCache::run`] once a
/// network is installed via [`TrialCache::set_timed_net`].
///
/// # Panics
///
/// Panics if the engine's topology size differs from `n`, or if an
/// override id is out of range or duplicated.
#[allow(clippy::too_many_arguments)] // the worker's reusable buffers, spelled out
pub fn run_ring_attack_timed_into<M: Clone, N: Node<M> + ArenaBacked, D: Node<M>>(
    engine: &mut Engine<M>,
    n: usize,
    mut honest: impl FnMut(NodeId, &mut TrialArena) -> N,
    overrides: Vec<(NodeId, D)>,
    wakes: &[NodeId],
    nodes_buf: &mut Vec<MixNode<N, D>>,
    timed: &mut TimedScheduler<M>,
    net: &TimedNetConfig,
    seed: u64,
    arena: &mut TrialArena,
    out: &mut Execution,
) {
    assert_eq!(
        engine.topology().len(),
        n,
        "engine topology size must match the protocol's ring size"
    );
    arena.reset();
    nodes_buf.clear();
    merge_ring_overrides(n, overrides, |id, deviant| {
        nodes_buf.push(match deviant {
            Some(node) => MixNode::Deviant(node),
            None => MixNode::Honest(honest(id, arena)),
        })
    });
    engine.run_timed_mono_into(
        nodes_buf,
        wakes,
        timed,
        net,
        seed,
        default_step_limit(n),
        out,
    );
    for node in nodes_buf.iter_mut() {
        node.reclaim(arena);
    }
}

/// Per-thread cached trial state for repeated attack (or honest-vs-attack)
/// runs over one ring size: the engine with its preallocated link queues
/// and edge tables, the mixed node vector, a pooled FIFO scheduler, the
/// trial arena, and the reused [`Execution`].
///
/// This gives `run_with`-style attack experiments the same steady-state
/// allocation profile honest sweeps get from their per-worker state: hold
/// one `TrialCache` per worker thread and call [`TrialCache::run`] per
/// trial. The attacks crate's `run_in` entry points take one of these.
///
/// # Examples
///
/// ```
/// use fle_core::protocols::{FleProtocol, PhaseAsyncLead, PhaseTrialCache};
///
/// let mut cache = PhaseTrialCache::ring(16);
/// for seed in 0..4 {
///     let p = PhaseAsyncLead::new(16).with_seed(seed);
///     let exec = p.run_with_in(Vec::new(), &mut cache);
///     assert_eq!(exec, &p.run_honest());
/// }
/// ```
pub struct TrialCache<M, N, D = Box<dyn Node<M>>> {
    engine: Engine<M>,
    nodes: Vec<MixNode<N, D>>,
    scheduler: FifoScheduler,
    arena: TrialArena,
    exec: Execution,
    /// `0..n`, precomputed for protocols that wake every node
    /// (`Basic-LEAD`) so per-trial wake lists need no allocation.
    all_ids: Vec<NodeId>,
    /// Reusable timed-path event heap (empty and unused until a network
    /// is installed via [`TrialCache::set_timed_net`]).
    timed: TimedScheduler<M>,
    /// When set, [`TrialCache::run`] routes trials through the
    /// virtual-clock timed path under this network configuration.
    net: Option<TimedNetConfig>,
    /// Seed of the timed path's network-noise stream for the next trial;
    /// attack runners record the trial seed here before each run. The
    /// same trial seed feeds the crash-fault stream (which is
    /// salt-separated, so the two never correlate).
    net_seed: u64,
    /// When set, every trial draws a crash-fault plan from its trial seed
    /// under this configuration and installs it on the engine.
    fault_cfg: Option<FaultConfig>,
    /// Reused buffer for the per-trial fault draw.
    fault_plan: FaultPlan,
}

impl<M: Clone, N: Node<M> + ArenaBacked, D: Node<M>> TrialCache<M, N, D> {
    /// Creates the cache for a unidirectional ring of `n` nodes.
    pub fn ring(n: usize) -> Self {
        Self {
            engine: Engine::new(Topology::ring(n)),
            nodes: Vec::with_capacity(n),
            scheduler: FifoScheduler::new(),
            arena: TrialArena::new(),
            exec: Execution::default(),
            all_ids: (0..n).collect(),
            timed: TimedScheduler::new(),
            net: None,
            net_seed: 0,
            fault_cfg: None,
            fault_plan: FaultPlan::none(),
        }
    }

    /// Installs (or clears) a timed network: subsequent trials run on the
    /// virtual-clock path under `net`'s per-link profiles, seeded per
    /// trial via [`TrialCache::set_trial_seed`]. `None` restores the
    /// untimed FIFO fast path.
    pub fn set_timed_net(&mut self, net: Option<&TimedNetConfig>) {
        self.net = net.cloned();
    }

    /// Records the seed of the next trial's network-noise and crash-fault
    /// streams (a no-op while neither a timed network nor a fault
    /// configuration is installed).
    pub fn set_trial_seed(&mut self, seed: u64) {
        self.net_seed = seed;
    }

    /// Installs (or clears) a crash-fault configuration: each subsequent
    /// trial draws a fresh [`FaultPlan`] from its trial seed (recorded via
    /// [`TrialCache::set_trial_seed`]) and applies it for that trial.
    /// `None` restores the fault-free path.
    pub fn set_faults(&mut self, cfg: Option<&FaultConfig>) {
        self.fault_cfg = cfg.copied();
    }

    /// The cached ring size.
    pub fn n(&self) -> usize {
        self.engine.topology().len()
    }

    /// Runs one trial through [`run_ring_attack_into`] over this cache's
    /// buffers and returns the reused [`Execution`].
    ///
    /// # Panics
    ///
    /// Panics if `wakes` or an override id is out of range, or an override
    /// is duplicated.
    pub fn run(
        &mut self,
        honest: impl FnMut(NodeId, &mut TrialArena) -> N,
        overrides: Vec<(NodeId, D)>,
        wakes: &[NodeId],
    ) -> &Execution {
        let n = self.n();
        let Self {
            engine,
            nodes,
            scheduler,
            arena,
            exec,
            timed,
            net,
            net_seed,
            fault_cfg,
            fault_plan,
            ..
        } = self;
        install_faults(engine, fault_cfg.as_ref(), fault_plan, n, *net_seed);
        match net {
            Some(net) => run_ring_attack_timed_into(
                engine, n, honest, overrides, wakes, nodes, timed, net, *net_seed, arena, exec,
            ),
            None => run_ring_attack_into(
                engine, n, honest, overrides, wakes, nodes, scheduler, arena, exec,
            ),
        }
        exec
    }

    /// [`TrialCache::run`] with every node waking spontaneously in id
    /// order (`Basic-LEAD`'s wake pattern), using the cache's precomputed
    /// id list (borrowed in place, so a panicking run cannot corrupt it).
    pub fn run_wake_all(
        &mut self,
        honest: impl FnMut(NodeId, &mut TrialArena) -> N,
        overrides: Vec<(NodeId, D)>,
    ) -> &Execution {
        let n = self.engine.topology().len();
        let Self {
            engine,
            nodes,
            scheduler,
            arena,
            exec,
            all_ids,
            timed,
            net,
            net_seed,
            fault_cfg,
            fault_plan,
        } = self;
        install_faults(engine, fault_cfg.as_ref(), fault_plan, n, *net_seed);
        match net {
            Some(net) => run_ring_attack_timed_into(
                engine, n, honest, overrides, all_ids, nodes, timed, net, *net_seed, arena, exec,
            ),
            None => run_ring_attack_into(
                engine, n, honest, overrides, all_ids, nodes, scheduler, arena, exec,
            ),
        }
        exec
    }

    /// The last trial's [`Execution`] (all zeros/failed before any run).
    pub fn execution(&self) -> &Execution {
        &self.exec
    }
}

/// Applies a [`TrialCache`]'s fault configuration for one trial: draws the
/// plan from the trial seed into the reused buffer and installs it, or
/// clears any stale plan when faults are off (so toggling the
/// configuration can never leak a previous trial's plan into the next).
fn install_faults<M>(
    engine: &mut Engine<M>,
    cfg: Option<&FaultConfig>,
    plan: &mut FaultPlan,
    n: usize,
    trial_seed: u64,
) {
    match cfg {
        Some(cfg) => {
            plan.draw_into(cfg, n, trial_seed);
            engine.set_fault_plan(plan);
        }
        None => engine.clear_fault_plan(),
    }
}

/// [`TrialCache`] for the phase protocols' boxed coalition mixes.
pub type PhaseTrialCache = TrialCache<PhaseMsg, PhaseNode>;

/// [`TrialCache`] for `WakeLead`'s boxed coalition mixes.
pub type WakeTrialCache = TrialCache<WakeMsg, WakeNode>;

/// The one override-merge loop every ring path shares: walks positions
/// `0..n` in order, calling `emit(id, Some(deviant))` for coalition
/// positions and `emit(id, None)` for honest ones. Both the `SimBuilder`
/// path ([`assemble_ring_nodes`]) and the engine attack fast path
/// ([`run_ring_attack_into`]) funnel through here, so override semantics
/// cannot drift between them.
///
/// # Panics
///
/// Panics if an override id is out of range or duplicated.
fn merge_ring_overrides<D>(
    n: usize,
    mut overrides: Vec<(NodeId, D)>,
    mut emit: impl FnMut(NodeId, Option<D>),
) {
    overrides.sort_by_key(|(id, _)| *id);
    let mut next_override = overrides.into_iter().peekable();
    for id in 0..n {
        if next_override.peek().is_some_and(|(o, _)| *o == id) {
            let (_, node) = next_override.next().expect("peeked");
            emit(id, Some(node));
        } else {
            emit(id, None);
        }
    }
    assert!(
        next_override.next().is_none(),
        "override id out of range or duplicated"
    );
}

/// Merges the honest node builder with the coalition's overrides into the
/// full `0..n` behaviour vector (the `SimBuilder` form of
/// [`merge_ring_overrides`]).
///
/// # Panics
///
/// Panics if an override id is out of range or duplicated.
fn assemble_ring_nodes<M>(
    n: usize,
    honest: impl Fn(NodeId) -> Box<dyn Node<M>>,
    overrides: Vec<(NodeId, Box<dyn Node<M>>)>,
) -> Vec<Box<dyn Node<M>>> {
    let mut nodes: Vec<Box<dyn Node<M>>> = Vec::with_capacity(n);
    merge_ring_overrides(n, overrides, |id, deviant| {
        nodes.push(deviant.unwrap_or_else(|| honest(id)))
    });
    nodes
}

/// [`run_ring`] with an optional instrumentation probe.
///
/// # Panics
///
/// Same conditions as [`run_ring`].
pub fn run_ring_probed<M: 'static>(
    n: usize,
    honest: impl Fn(NodeId) -> Box<dyn Node<M>>,
    overrides: Vec<(NodeId, Box<dyn Node<M>>)>,
    wakes: &[NodeId],
    probe: Option<&mut dyn Probe<M>>,
) -> Execution {
    let mut builder = SimBuilder::new(Topology::ring(n));
    for (id, node) in assemble_ring_nodes(n, honest, overrides)
        .into_iter()
        .enumerate()
    {
        builder = builder.boxed_node(id, node);
    }
    for &w in wakes {
        builder = builder.wake(w);
    }
    if let Some(p) = probe {
        builder = builder.probe(p);
    }
    builder.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_values_are_deterministic_and_in_range() {
        let a = honest_data_values(42, 16);
        let b = honest_data_values(42, 16);
        assert_eq!(a, b);
        assert!(a.iter().all(|&d| d < 16));
        let c = honest_data_values(43, 16);
        assert_ne!(a, c);
    }

    #[test]
    fn node_rng_streams_differ_between_nodes() {
        let mut r0 = node_rng(7, 0);
        let mut r1 = node_rng(7, 1);
        assert_ne!(r0.next_u64(), r1.next_u64());
    }

    /// The engine-reuse path must be bit-identical to the builder path for
    /// every protocol, including across back-to-back trials on one engine.
    #[test]
    fn run_honest_in_matches_run_honest() {
        let n = 8;
        let mut u64_engine = Engine::new(Topology::ring(n));
        let mut phase_engine = Engine::new(Topology::ring(n));
        for seed in [0, 1, 77] {
            let basic = BasicLead::new(n).with_seed(seed);
            assert_eq!(basic.run_honest_in(&mut u64_engine), basic.run_honest());
            let alead = ALeadUni::new(n).with_seed(seed);
            assert_eq!(alead.run_honest_in(&mut u64_engine), alead.run_honest());
            let phase = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(9);
            assert_eq!(phase.run_honest_in(&mut phase_engine), phase.run_honest());
            let psum = PhaseSumLead::new(n).with_seed(seed);
            assert_eq!(psum.run_honest_in(&mut phase_engine), psum.run_honest());
        }
    }

    #[test]
    #[should_panic(expected = "engine topology size")]
    fn run_ring_in_rejects_size_mismatch() {
        let mut engine: Engine<u64> = Engine::new(Topology::ring(4));
        let p = BasicLead::new(5);
        let _ = p.run_honest_in(&mut engine);
    }
}
