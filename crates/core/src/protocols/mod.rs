//! The paper's ring protocols and a harness for running them, honestly or
//! under adversarial deviations.
//!
//! * [`BasicLead`] — Appendix B's non-resilient strawman.
//! * [`ALeadUni`] — Abraham et al.'s buffered protocol (paper Section 3).
//! * [`PhaseAsyncLead`] — the paper's Θ(√n)-resilient protocol (Section 6).
//! * [`PhaseSumLead`] — the Appendix E.4 ablation (phase validation but
//!   `sum` instead of a random `f`).
//! * [`SyncLead`] — the synchronous `(n−1)`-resilient contrast protocol
//!   from the related work (paper Section 1.1).
//! * [`SyncRingLead`] — the synchronous *ring* variant: same `(n−1)`
//!   resilience, delivered purely by round-synchrony on the ring.
//!
//! All protocols use 0-indexed processor ids `0..n` with the origin at 0
//! and outputs in `[0, n)`; see DESIGN.md §4 for the index translation from
//! the paper's `[1, n]`.

mod a_lead_uni;
mod basic_lead;
mod phase;
mod phase_indexed;
mod sync_lead;
mod sync_ring;
mod wakeup;

pub use a_lead_uni::{ALeadNode, ALeadUni};
pub use basic_lead::{BasicLead, BasicNode};
pub use phase::{PhaseAsyncLead, PhaseMsg, PhaseNode, PhaseSumLead};
pub use phase_indexed::{IndexedMsg, IndexedPhaseLead};
pub use sync_lead::{SyncFixedValue, SyncLead, SyncWaitAndCancel};
pub use sync_ring::{SyncRingCorruptor, SyncRingLead, SyncRingNode, SyncRingWaiter};
pub use wakeup::{WakeLead, WakeMsg, WakeNode};

use ring_sim::rng::SplitMix64;
use ring_sim::{
    default_step_limit, Engine, Execution, FifoScheduler, Node, NodeId, Probe, SimBuilder, Topology,
};

/// Common interface of the ring fair-leader-election protocols, used by
/// the experiment harness.
pub trait FleProtocol {
    /// Ring size.
    fn n(&self) -> usize;

    /// Human-readable protocol name.
    fn name(&self) -> &'static str;

    /// Runs an honest execution (all processors follow the protocol).
    fn run_honest(&self) -> Execution;
}

/// Derives the secret data values `d_i` that honest processors draw for a
/// protocol instance seeded with `seed`. Exposed so tests can predict the
/// honest sum; attack implementations never call this (the adversary does
/// not know honest secrets).
pub fn honest_data_values(seed: u64, n: usize) -> Vec<u64> {
    (0..n)
        .map(|i| node_rng(seed, i).next_below(n as u64))
        .collect()
}

/// The per-node random stream: node `i` of an instance seeded `seed` draws
/// all its randomness from this generator, data value first.
pub(crate) fn node_rng(seed: u64, id: NodeId) -> SplitMix64 {
    SplitMix64::new(seed).derive(id as u64)
}

/// Runs a ring protocol with some nodes replaced by adversarial behaviours.
///
/// `honest` builds the protocol's honest node for an id; `overrides` maps
/// coalition positions to their deviating strategies. `wakes` lists the
/// spontaneously-waking nodes in wake order (for the protocols here: only
/// the origin, except `Basic-LEAD` which wakes everyone).
///
/// # Panics
///
/// Panics if an override id is out of range or duplicated (programming
/// error in the attack harness).
pub fn run_ring<M: 'static>(
    n: usize,
    honest: impl Fn(NodeId) -> Box<dyn Node<M>>,
    overrides: Vec<(NodeId, Box<dyn Node<M>>)>,
    wakes: &[NodeId],
) -> Execution {
    run_ring_probed(n, honest, overrides, wakes, None)
}

/// [`run_ring`] through a reusable [`Engine`] — the batch-trial entry
/// point used by `fle-harness`.
///
/// Produces bit-identical [`Execution`]s to [`run_ring`] on the same
/// inputs, but reuses the engine's preallocated link queues and adjacency
/// tables instead of rebuilding them per trial. The engine must simulate a
/// unidirectional ring of `n` nodes (typically
/// `Engine::new(Topology::ring(n))`, created once per worker thread).
///
/// # Panics
///
/// Panics if the engine's topology size differs from `n`, or if an
/// override id is out of range or duplicated.
pub fn run_ring_in<M: 'static>(
    engine: &mut Engine<M>,
    n: usize,
    honest: impl Fn(NodeId) -> Box<dyn Node<M>>,
    overrides: Vec<(NodeId, Box<dyn Node<M>>)>,
    wakes: &[NodeId],
) -> Execution {
    assert_eq!(
        engine.topology().len(),
        n,
        "engine topology size must match the protocol's ring size"
    );
    let mut nodes = assemble_ring_nodes(n, honest, overrides);
    engine.run(
        &mut nodes,
        wakes,
        &mut FifoScheduler::new(),
        default_step_limit(n),
    )
}

/// The honest-only, monomorphized variant of [`run_ring_in`]: node
/// behaviours are a homogeneous `N` (each protocol's honest node enum), so
/// the engine loop dispatches statically — no `Box`, no vtable. All four
/// protocols' `run_honest_in` route through here.
///
/// Produces bit-identical [`Execution`]s to the boxed [`run_ring_in`] with
/// the same behaviours.
///
/// # Panics
///
/// Panics if the engine's topology size differs from `n`.
pub fn run_ring_honest_in<M, N: Node<M>>(
    engine: &mut Engine<M>,
    n: usize,
    honest: impl FnMut(NodeId) -> N,
    wakes: &[NodeId],
) -> Execution {
    let mut out = Execution::default();
    run_ring_honest_into(
        engine,
        n,
        honest,
        wakes,
        &mut Vec::new(),
        &mut FifoScheduler::new(),
        &mut out,
    );
    out
}

/// [`run_ring_honest_in`] with caller-owned node, scheduler and result
/// buffers — the zero-allocation batch loop `fle-harness` sweeps run on.
///
/// `nodes_buf` is cleared and refilled (capacity retained), the
/// scheduler's token storage is cleared and reused, and `out` is
/// overwritten in place. A worker that reuses an [`Engine`], one
/// `nodes_buf`, one [`FifoScheduler`] and one [`Execution`] across a batch
/// performs no per-trial allocation beyond what the node behaviours
/// themselves do.
///
/// The scheduler parameter is concretely FIFO: honest ring executions are
/// defined over the fair global-send-order schedule, and pinning the type
/// here keeps every honest entry point on the identical interleaving.
///
/// # Panics
///
/// Panics if the engine's topology size differs from `n`.
pub fn run_ring_honest_into<M, N: Node<M>>(
    engine: &mut Engine<M>,
    n: usize,
    honest: impl FnMut(NodeId) -> N,
    wakes: &[NodeId],
    nodes_buf: &mut Vec<N>,
    scheduler: &mut FifoScheduler,
    out: &mut Execution,
) {
    assert_eq!(
        engine.topology().len(),
        n,
        "engine topology size must match the protocol's ring size"
    );
    nodes_buf.clear();
    nodes_buf.extend((0..n).map(honest));
    engine.run_mono_into(nodes_buf, wakes, scheduler, default_step_limit(n), out);
}

/// Merges the honest node builder with the coalition's overrides into the
/// full `0..n` behaviour vector (shared by the builder and engine paths,
/// so override semantics cannot drift between them).
///
/// # Panics
///
/// Panics if an override id is out of range or duplicated.
fn assemble_ring_nodes<M>(
    n: usize,
    honest: impl Fn(NodeId) -> Box<dyn Node<M>>,
    mut overrides: Vec<(NodeId, Box<dyn Node<M>>)>,
) -> Vec<Box<dyn Node<M>>> {
    overrides.sort_by_key(|(id, _)| *id);
    let mut next_override = overrides.into_iter().peekable();
    let mut nodes: Vec<Box<dyn Node<M>>> = Vec::with_capacity(n);
    for id in 0..n {
        if next_override.peek().is_some_and(|(o, _)| *o == id) {
            let (_, node) = next_override.next().expect("peeked");
            nodes.push(node);
        } else {
            nodes.push(honest(id));
        }
    }
    assert!(
        next_override.next().is_none(),
        "override id out of range or duplicated"
    );
    nodes
}

/// [`run_ring`] with an optional instrumentation probe.
///
/// # Panics
///
/// Same conditions as [`run_ring`].
pub fn run_ring_probed<M: 'static>(
    n: usize,
    honest: impl Fn(NodeId) -> Box<dyn Node<M>>,
    overrides: Vec<(NodeId, Box<dyn Node<M>>)>,
    wakes: &[NodeId],
    probe: Option<&mut dyn Probe<M>>,
) -> Execution {
    let mut builder = SimBuilder::new(Topology::ring(n));
    for (id, node) in assemble_ring_nodes(n, honest, overrides)
        .into_iter()
        .enumerate()
    {
        builder = builder.boxed_node(id, node);
    }
    for &w in wakes {
        builder = builder.wake(w);
    }
    if let Some(p) = probe {
        builder = builder.probe(p);
    }
    builder.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_values_are_deterministic_and_in_range() {
        let a = honest_data_values(42, 16);
        let b = honest_data_values(42, 16);
        assert_eq!(a, b);
        assert!(a.iter().all(|&d| d < 16));
        let c = honest_data_values(43, 16);
        assert_ne!(a, c);
    }

    #[test]
    fn node_rng_streams_differ_between_nodes() {
        let mut r0 = node_rng(7, 0);
        let mut r1 = node_rng(7, 1);
        assert_ne!(r0.next_u64(), r1.next_u64());
    }

    /// The engine-reuse path must be bit-identical to the builder path for
    /// every protocol, including across back-to-back trials on one engine.
    #[test]
    fn run_honest_in_matches_run_honest() {
        let n = 8;
        let mut u64_engine = Engine::new(Topology::ring(n));
        let mut phase_engine = Engine::new(Topology::ring(n));
        for seed in [0, 1, 77] {
            let basic = BasicLead::new(n).with_seed(seed);
            assert_eq!(basic.run_honest_in(&mut u64_engine), basic.run_honest());
            let alead = ALeadUni::new(n).with_seed(seed);
            assert_eq!(alead.run_honest_in(&mut u64_engine), alead.run_honest());
            let phase = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(9);
            assert_eq!(phase.run_honest_in(&mut phase_engine), phase.run_honest());
            let psum = PhaseSumLead::new(n).with_seed(seed);
            assert_eq!(psum.run_honest_in(&mut phase_engine), psum.run_honest());
        }
    }

    #[test]
    #[should_panic(expected = "engine topology size")]
    fn run_ring_in_rejects_size_mismatch() {
        let mut engine: Engine<u64> = Engine::new(Topology::ring(4));
        let p = BasicLead::new(5);
        let _ = p.run_honest_in(&mut engine);
    }
}
