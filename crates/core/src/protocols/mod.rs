//! The paper's ring protocols and a harness for running them, honestly or
//! under adversarial deviations.
//!
//! * [`BasicLead`] — Appendix B's non-resilient strawman.
//! * [`ALeadUni`] — Abraham et al.'s buffered protocol (paper Section 3).
//! * [`PhaseAsyncLead`] — the paper's Θ(√n)-resilient protocol (Section 6).
//! * [`PhaseSumLead`] — the Appendix E.4 ablation (phase validation but
//!   `sum` instead of a random `f`).
//! * [`SyncLead`] — the synchronous `(n−1)`-resilient contrast protocol
//!   from the related work (paper Section 1.1).
//! * [`SyncRingLead`] — the synchronous *ring* variant: same `(n−1)`
//!   resilience, delivered purely by round-synchrony on the ring.
//!
//! All protocols use 0-indexed processor ids `0..n` with the origin at 0
//! and outputs in `[0, n)`; see DESIGN.md §4 for the index translation from
//! the paper's `[1, n]`.

mod a_lead_uni;
mod basic_lead;
mod phase;
mod phase_indexed;
mod sync_lead;
mod sync_ring;
mod wakeup;

pub use a_lead_uni::ALeadUni;
pub use basic_lead::BasicLead;
pub use phase::{PhaseAsyncLead, PhaseMsg, PhaseSumLead};
pub use phase_indexed::{IndexedMsg, IndexedPhaseLead};
pub use sync_lead::{SyncFixedValue, SyncLead, SyncWaitAndCancel};
pub use sync_ring::{SyncRingCorruptor, SyncRingLead, SyncRingNode, SyncRingWaiter};
pub use wakeup::{WakeLead, WakeMsg, WakeNode};

use ring_sim::rng::SplitMix64;
use ring_sim::{Execution, Node, NodeId, Probe, SimBuilder, Topology};

/// Common interface of the ring fair-leader-election protocols, used by
/// the experiment harness.
pub trait FleProtocol {
    /// Ring size.
    fn n(&self) -> usize;

    /// Human-readable protocol name.
    fn name(&self) -> &'static str;

    /// Runs an honest execution (all processors follow the protocol).
    fn run_honest(&self) -> Execution;
}

/// Derives the secret data values `d_i` that honest processors draw for a
/// protocol instance seeded with `seed`. Exposed so tests can predict the
/// honest sum; attack implementations never call this (the adversary does
/// not know honest secrets).
pub fn honest_data_values(seed: u64, n: usize) -> Vec<u64> {
    (0..n)
        .map(|i| node_rng(seed, i).next_below(n as u64))
        .collect()
}

/// The per-node random stream: node `i` of an instance seeded `seed` draws
/// all its randomness from this generator, data value first.
pub(crate) fn node_rng(seed: u64, id: NodeId) -> SplitMix64 {
    SplitMix64::new(seed).derive(id as u64)
}

/// Runs a ring protocol with some nodes replaced by adversarial behaviours.
///
/// `honest` builds the protocol's honest node for an id; `overrides` maps
/// coalition positions to their deviating strategies. `wakes` lists the
/// spontaneously-waking nodes in wake order (for the protocols here: only
/// the origin, except `Basic-LEAD` which wakes everyone).
///
/// # Panics
///
/// Panics if an override id is out of range or duplicated (programming
/// error in the attack harness).
pub fn run_ring<M: 'static>(
    n: usize,
    honest: impl Fn(NodeId) -> Box<dyn Node<M>>,
    overrides: Vec<(NodeId, Box<dyn Node<M>>)>,
    wakes: &[NodeId],
) -> Execution {
    run_ring_probed(n, honest, overrides, wakes, None)
}

/// [`run_ring`] with an optional instrumentation probe.
///
/// # Panics
///
/// Same conditions as [`run_ring`].
pub fn run_ring_probed<M: 'static>(
    n: usize,
    honest: impl Fn(NodeId) -> Box<dyn Node<M>>,
    mut overrides: Vec<(NodeId, Box<dyn Node<M>>)>,
    wakes: &[NodeId],
    probe: Option<&mut dyn Probe<M>>,
) -> Execution {
    overrides.sort_by_key(|(id, _)| *id);
    let mut builder = SimBuilder::new(Topology::ring(n));
    let mut next_override = overrides.into_iter().peekable();
    for id in 0..n {
        if next_override.peek().is_some_and(|(o, _)| *o == id) {
            let (_, node) = next_override.next().expect("peeked");
            builder = builder.boxed_node(id, node);
        } else {
            builder = builder.boxed_node(id, honest(id));
        }
    }
    assert!(
        next_override.next().is_none(),
        "override id out of range or duplicated"
    );
    for &w in wakes {
        builder = builder.wake(w);
    }
    if let Some(p) = probe {
        builder = builder.probe(p);
    }
    builder.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_values_are_deterministic_and_in_range() {
        let a = honest_data_values(42, 16);
        let b = honest_data_values(42, 16);
        assert_eq!(a, b);
        assert!(a.iter().all(|&d| d < 16));
        let c = honest_data_values(43, 16);
        assert_ne!(a, c);
    }

    #[test]
    fn node_rng_streams_differ_between_nodes() {
        let mut r0 = node_rng(7, 0);
        let mut r1 = node_rng(7, 1);
        assert_ne!(r0.next_u64(), r1.next_u64());
    }
}
