//! `Basic-LEAD` — the didactic non-resilient protocol (paper Appendix B).
//!
//! Every processor wakes up, broadcasts its secret value around the ring,
//! forwards everything it receives, and elects `Σ d_i (mod n)`. Fair when
//! everyone is honest, but a **single** adversary controls the outcome by
//! waiting for the other `n − 1` values before "choosing" its own
//! (Claim B.1, reproduced in `fle-attacks::basic_single`).

use super::{fold_mod, node_rng, run_ring, wrap_sub, FleProtocol, TrialCache};
use ring_sim::{ArenaBacked, Ctx, Execution, Node, NodeId, TrialArena};

/// [`TrialCache`] for `Basic-LEAD`'s boxed coalition mixes.
pub type BasicTrialCache = TrialCache<u64, BasicNode>;

/// The `Basic-LEAD` protocol instance.
///
/// # Examples
///
/// ```
/// use fle_core::protocols::{BasicLead, FleProtocol};
///
/// let exec = BasicLead::new(8).with_seed(5).run_honest();
/// let leader = exec.outcome.elected().unwrap();
/// assert!(leader < 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicLead {
    n: usize,
    seed: u64,
    values: Option<Vec<u64>>,
}

impl BasicLead {
    /// Creates an instance for a ring of `n` processors (seed 0).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "Basic-LEAD needs n >= 2");
        Self {
            n,
            seed: 0,
            values: None,
        }
    }

    /// Sets the randomness seed for the honest processors' secret values.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins the honest secret values instead of drawing them from the
    /// seed — the injection point for [`crate::exact`]'s exhaustive input
    /// enumeration (the paper's probability space `χ = [n]^n`).
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from `n` or a value is `≥ n`.
    pub fn with_values(mut self, values: Vec<u64>) -> Self {
        assert_eq!(values.len(), self.n, "need one value per processor");
        assert!(
            values.iter().all(|&d| d < self.n as u64),
            "values must be in [n]"
        );
        self.values = Some(values);
        self
    }

    /// The instance seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The pinned honest values installed by [`BasicLead::with_values`],
    /// if any — read by the batch-lockstep builder.
    pub(crate) fn pinned_values(&self) -> Option<&[u64]> {
        self.values.as_deref()
    }

    /// Builds the honest node for position `id` as a boxed trait object
    /// (for heterogeneous protocol/attack mixes).
    pub fn honest_node(&self, id: NodeId) -> Box<dyn Node<u64>> {
        Box::new(self.honest_ring_node(id))
    }

    /// Builds the honest node for position `id` as its concrete type — the
    /// monomorphized form the batch fast path stores in a plain `Vec`
    /// (no `Box`, no vtable per activation).
    pub fn honest_ring_node(&self, id: NodeId) -> BasicNode {
        let d = match &self.values {
            Some(vs) => vs[id],
            None => node_rng(self.seed, id).next_below(self.n as u64),
        };
        BasicNode {
            n: self.n as u64,
            d,
            sum: 0,
            round: 0,
        }
    }

    /// [`BasicLead::honest_ring_node`] with the uniform arena-aware batch
    /// surface; `BasicNode` holds no heap state, so the arena goes unused.
    pub fn honest_ring_node_in(&self, id: NodeId, _arena: &mut TrialArena) -> BasicNode {
        self.honest_ring_node(id)
    }

    /// Every processor wakes spontaneously in `Basic-LEAD`.
    pub fn wakes(&self) -> Vec<NodeId> {
        (0..self.n).collect()
    }

    /// Runs with the coalition positions replaced by `overrides`.
    pub fn run_with(&self, overrides: Vec<(NodeId, Box<dyn Node<u64>>)>) -> Execution {
        run_ring(self.n, |id| self.honest_node(id), overrides, &self.wakes())
    }

    /// [`BasicLead::run_with`] through a per-thread [`TrialCache`] — the
    /// engine attack fast path (honest positions dispatch on the concrete
    /// [`BasicNode`]; only coalition positions run `D`). Bit-identical to
    /// [`BasicLead::run_with`] over equivalent overrides.
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from `n`, or an override id
    /// is out of range or duplicated.
    pub fn run_with_in<'c, D: Node<u64>>(
        &self,
        overrides: Vec<(NodeId, D)>,
        cache: &'c mut TrialCache<u64, BasicNode, D>,
    ) -> &'c Execution {
        assert_eq!(
            cache.n(),
            self.n,
            "cache ring size must match the protocol's ring size"
        );
        cache.run_wake_all(|id, arena| self.honest_ring_node_in(id, arena), overrides)
    }

    /// Runs an honest execution through a reusable engine (the
    /// monomorphized batch-trial fast path; bit-identical to
    /// [`FleProtocol::run_honest`]).
    ///
    /// # Panics
    ///
    /// Panics if the engine's ring size differs from `n`.
    pub fn run_honest_in(&self, engine: &mut ring_sim::Engine<u64>) -> Execution {
        super::run_ring_honest_in(
            engine,
            self.n,
            |id| self.honest_ring_node(id),
            &self.wakes(),
        )
    }
}

impl FleProtocol for BasicLead {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> &'static str {
        "Basic-LEAD"
    }

    fn run_honest(&self) -> Execution {
        self.run_with(Vec::new())
    }
}

/// Honest `Basic-LEAD` processor: broadcast own value, forward `n − 1`
/// others, validate that the own value returns last, output the sum.
///
/// Built by [`BasicLead::honest_ring_node`]; exposed as a concrete type so
/// honest sweeps store nodes in a plain `Vec<BasicNode>` and the engine
/// dispatches to it statically.
#[derive(Debug, Clone)]
pub struct BasicNode {
    n: u64,
    d: u64,
    sum: u64,
    round: u64,
}

/// `BasicNode` keeps only scalar state — nothing to reclaim.
impl ArenaBacked for BasicNode {}

impl Node<u64> for BasicNode {
    fn on_wake(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.send(self.d);
    }

    fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
        let m = fold_mod(msg, self.n);
        self.round += 1;
        self.sum = wrap_sub(self.sum + m, self.n);
        if self.round < self.n {
            ctx.send(m);
        } else if m == self.d {
            ctx.terminate(Some(self.sum));
        } else {
            // Validation failed: the value that came full circle is not ours.
            ctx.abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::honest_data_values;
    use ring_sim::Outcome;

    #[test]
    fn honest_run_elects_sum_of_values() {
        for n in [2, 3, 5, 16] {
            for seed in 0..5 {
                let p = BasicLead::new(n).with_seed(seed);
                let expected = honest_data_values(seed, n).iter().sum::<u64>() % n as u64;
                assert_eq!(
                    p.run_honest().outcome,
                    Outcome::Elected(expected),
                    "n={n} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn every_processor_sends_and_receives_n() {
        let p = BasicLead::new(7).with_seed(1);
        let exec = p.run_honest();
        assert!(exec.stats.sent.iter().all(|&s| s == 7));
        assert!(exec.stats.received.iter().all(|&r| r == 7));
    }

    #[test]
    fn outcome_distribution_is_uniform_over_seeds() {
        let n = 8usize;
        let trials = 4000;
        let mut counts = vec![0u32; n];
        for seed in 0..trials {
            let out = BasicLead::new(n).with_seed(seed).run_honest().outcome;
            counts[out.elected().expect("honest runs succeed") as usize] += 1;
        }
        let expect = trials as f64 / n as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.25,
                "counts={counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn tiny_ring_rejected() {
        let _ = BasicLead::new(1);
    }
}
