//! `SyncLead` — fair leader election on a *synchronous* fully connected
//! network, resilient to coalitions of `n − 1` (paper Section 1.1, first
//! scenario, after Abraham et al.).
//!
//! Round 0: every processor broadcasts its secret `d_i` — simultaneously,
//! so nobody's choice can depend on anyone else's. Round 1: every
//! processor checks it received exactly one value from *every* other
//! processor (synchrony makes silence detectable — the move that is
//! impossible in the asynchronous model) and outputs `Σ dᵢ (mod n)`.
//!
//! With even one honest processor the sum is uniform no matter what the
//! other `n − 1` choose, and any attempt to wait (the Claim B.1 move that
//! demolishes `Basic-LEAD`) is caught as a missing round-0 message. This
//! is the contrast that motivates the whole paper: the same task needs
//! `Θ(√n)`-sized machinery once the network is asynchronous.

use super::node_rng;
use ring_sim::sync::{SyncCtx, SyncExecution, SyncNode, SyncSim};
use ring_sim::{NodeId, Topology};

/// A `SyncLead` instance on a fully connected synchronous network.
///
/// # Examples
///
/// ```
/// use fle_core::protocols::SyncLead;
///
/// let exec = SyncLead::new(8).with_seed(3).run_honest();
/// assert!(exec.outcome.elected().unwrap() < 8);
/// assert_eq!(exec.rounds, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncLead {
    n: usize,
    seed: u64,
}

impl SyncLead {
    /// Creates an instance for `n` processors (seed 0).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "SyncLead needs n >= 2");
        Self { n, seed: 0 }
    }

    /// Sets the randomness seed for the processors' secret values.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Ring size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The instance seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Builds the honest node for `id`.
    pub fn honest_node(&self, id: NodeId) -> Box<dyn SyncNode<u64>> {
        let d = node_rng(self.seed, id).next_below(self.n as u64);
        Box::new(SyncLeadNode { n: self.n, d })
    }

    /// Runs with the coalition positions replaced by `overrides`.
    pub fn run_with(&self, overrides: Vec<(NodeId, Box<dyn SyncNode<u64>>)>) -> SyncExecution {
        let mut sim = SyncSim::new(Topology::complete(self.n));
        let mut overridden: Vec<Option<Box<dyn SyncNode<u64>>>> =
            (0..self.n).map(|_| None).collect();
        for (id, node) in overrides {
            assert!(overridden[id].is_none(), "override {id} duplicated");
            overridden[id] = Some(node);
        }
        for (id, slot) in overridden.into_iter().enumerate() {
            sim = sim.boxed_node(id, slot.unwrap_or_else(|| self.honest_node(id)));
        }
        sim.run()
    }

    /// Runs an honest execution.
    pub fn run_honest(&self) -> SyncExecution {
        self.run_with(Vec::new())
    }
}

/// Honest node: broadcast in round 0, validate completeness in round 1.
struct SyncLeadNode {
    n: usize,
    d: u64,
}

impl SyncNode<u64> for SyncLeadNode {
    fn on_round(&mut self, round: usize, inbox: &[(NodeId, u64)], ctx: &mut SyncCtx<'_, u64>) {
        match round {
            0 => {
                for to in 0..self.n {
                    if to != ctx.me() {
                        ctx.send_to(to, self.d);
                    }
                }
            }
            _ => {
                // Exactly one message from every other processor, in
                // sender order — anything else is a detected deviation.
                let complete = inbox.len() == self.n - 1
                    && inbox
                        .iter()
                        .map(|&(from, _)| from)
                        .eq((0..self.n).filter(|&i| i != ctx.me()));
                if !complete {
                    ctx.abort();
                    return;
                }
                let sum: u64 = self.d + inbox.iter().map(|&(_, v)| v % self.n as u64).sum::<u64>();
                ctx.terminate(Some(sum % self.n as u64));
            }
        }
    }
}

/// The Claim B.1 adversary transplanted to the synchronous world: stay
/// silent in round 0, hoping to pick a cancelling value after seeing
/// everyone else's. Synchrony defeats it — the missing round-0 message is
/// detected and every honest processor aborts.
#[derive(Debug, Clone, Copy)]
pub struct SyncWaitAndCancel {
    n: usize,
    target: u64,
}

impl SyncWaitAndCancel {
    /// An adversary aiming (hopelessly) at `target`.
    pub fn new(n: usize, target: u64) -> Self {
        Self { n, target }
    }
}

impl SyncNode<u64> for SyncWaitAndCancel {
    fn on_round(&mut self, round: usize, inbox: &[(NodeId, u64)], ctx: &mut SyncCtx<'_, u64>) {
        match round {
            0 => {} // wait — the fatal move
            1 => {
                let others: u64 = inbox.iter().map(|&(_, v)| v % self.n as u64).sum();
                let own = (self.target + self.n as u64 - others % self.n as u64) % self.n as u64;
                for to in 0..self.n {
                    if to != ctx.me() {
                        ctx.send_to(to, own);
                    }
                }
            }
            _ => ctx.terminate(Some(self.target)),
        }
    }
}

/// An `n − 1` coalition playing *fixed* (non-random) values but otherwise
/// complying — the strongest undetectable deviation, against which the
/// single honest processor's randomness still keeps the election uniform.
#[derive(Debug, Clone, Copy)]
pub struct SyncFixedValue {
    n: usize,
    value: u64,
}

impl SyncFixedValue {
    /// A complying adversary that always "draws" `value`.
    pub fn new(n: usize, value: u64) -> Self {
        Self { n, value }
    }
}

impl SyncNode<u64> for SyncFixedValue {
    fn on_round(&mut self, round: usize, inbox: &[(NodeId, u64)], ctx: &mut SyncCtx<'_, u64>) {
        match round {
            0 => {
                for to in 0..self.n {
                    if to != ctx.me() {
                        ctx.send_to(to, self.value);
                    }
                }
            }
            _ => {
                let sum: u64 =
                    self.value + inbox.iter().map(|&(_, v)| v % self.n as u64).sum::<u64>();
                ctx.terminate(Some(sum % self.n as u64));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::honest_data_values;
    use ring_sim::Outcome;

    #[test]
    fn honest_run_elects_sum_in_two_rounds() {
        for n in [2, 5, 16] {
            for seed in 0..5 {
                let expected = honest_data_values(seed, n).iter().sum::<u64>() % n as u64;
                let exec = SyncLead::new(n).with_seed(seed).run_honest();
                assert_eq!(exec.outcome, Outcome::Elected(expected));
                assert_eq!(exec.rounds, 2);
                assert_eq!(exec.messages, (n * (n - 1)) as u64);
            }
        }
    }

    #[test]
    fn wait_and_cancel_is_detected() {
        let n = 8;
        for seed in 0..10 {
            let p = SyncLead::new(n).with_seed(seed);
            let exec = p.run_with(vec![(3, Box::new(SyncWaitAndCancel::new(n, 5)))]);
            assert!(exec.outcome.is_fail(), "seed={seed}: {:?}", exec.outcome);
        }
    }

    #[test]
    fn n_minus_1_fixed_coalition_cannot_bias() {
        // Everyone but processor 0 plays value 0; the outcome is then
        // exactly d_0 — uniform over the honest randomness.
        let n = 8usize;
        let trials = 4000u64;
        let mut counts = vec![0u64; n];
        for seed in 0..trials {
            let p = SyncLead::new(n).with_seed(seed);
            let overrides = (1..n)
                .map(|id| {
                    let node: Box<dyn SyncNode<u64>> = Box::new(SyncFixedValue::new(n, 0));
                    (id, node)
                })
                .collect();
            let exec = p.run_with(overrides);
            counts[exec.outcome.elected().expect("complying coalition") as usize] += 1;
        }
        let expect = trials as f64 / n as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < expect * 0.25, "{counts:?}");
        }
    }

    #[test]
    fn the_async_contrast() {
        // The identical wait-and-cancel move that controls Basic-LEAD
        // with probability 1 (Claim B.1) fails here with probability 1.
        use crate::protocols::{BasicLead, FleProtocol};
        let n = 8;
        let sync_fail = SyncLead::new(n)
            .with_seed(1)
            .run_with(vec![(2, Box::new(SyncWaitAndCancel::new(n, 5)))])
            .outcome
            .is_fail();
        assert!(sync_fail);
        let basic = BasicLead::new(n).with_seed(1);
        assert!(basic.run_honest().outcome.elected().is_some());
    }
}
