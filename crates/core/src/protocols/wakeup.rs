//! `WakeLead` — `A-LEADuni` preceded by the wake-up phase of Abraham et
//! al. [4] / Afek et al. [5], for the *unknown-ids* model of the paper's
//! Appendix H.
//!
//! In the original papers the processors do not know the id set `V`
//! beforehand: the protocol opens with a **wake-up phase** in which every
//! processor announces its id and forwards every other id once; when a
//! processor's own id returns it has seen all `n` ids *in ring order*, so
//! it knows `n`, the full layout relative to itself, and the designated
//! origin (the minimum id). The election phase is then exactly
//! `A-LEADuni` with the computed indices, except the final output is the
//! *id* of the winning position rather than the position itself.
//!
//! Appendix H explains why the paper's resilience proofs do **not**
//! extend to this protocol — adversaries can abuse the wake-up phase to
//! transfer information and to allocate an origin inside every honest
//! segment — and why the unknown-ids problem statement itself is fragile
//! (a coalition that lies about its ids gains utility under the rational
//! utility `u₀(x) = 1[x ∉ Ω]`). Both abuses are implemented in
//! `fle-attacks::wakeup_mask`.

use super::{node_rng, run_ring, FleProtocol, TrialCache};
use ring_sim::rng::SplitMix64;
use ring_sim::{ArenaBacked, Ctx, Execution, Node, NodeId, TrialArena};

/// Messages of `WakeLead`: id announcements, then election data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeMsg {
    /// Wake-up phase: an id travelling the ring.
    Id(u64),
    /// Election phase: a data value (as in `A-LEADuni`).
    Data(u64),
}

/// A `WakeLead` protocol instance. Ids are drawn from a 48-bit space, so
/// they carry high bits an Appendix H masking adversary can strip.
///
/// # Examples
///
/// ```
/// use fle_core::protocols::{FleProtocol, WakeLead};
///
/// let p = WakeLead::new(8).with_seed(3);
/// let winner_id = p.run_honest().outcome.elected().unwrap();
/// assert!(p.ids().contains(&winner_id));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WakeLead {
    n: usize,
    seed: u64,
    ids: Vec<u64>,
}

impl WakeLead {
    /// Bit width of the id space (ids are `< 2^48`).
    pub const ID_BITS: u32 = 48;

    /// Creates an instance for `n ≥ 2` processors with distinct random
    /// ids derived from seed 0.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "WakeLead needs n >= 2");
        let mut p = Self {
            n,
            seed: 0,
            ids: Vec::new(),
        };
        p.redraw_ids();
        p
    }

    /// Sets the instance seed (redraws ids and secret values).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.redraw_ids();
        self
    }

    fn redraw_ids(&mut self) {
        let mut rng = SplitMix64::new(self.seed).derive(0x1D5);
        let mut ids = Vec::with_capacity(self.n);
        while ids.len() < self.n {
            let candidate = rng.next_below(1 << Self::ID_BITS);
            if !ids.contains(&candidate) {
                ids.push(candidate);
            }
        }
        self.ids = ids;
    }

    /// The instance seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The (hidden) ids by ring position. Protocol code never reads this;
    /// it exists for tests and for attack builders, which per Appendix H
    /// may behave honestly during the wake-up phase and therefore learn
    /// the ids anyway.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The data values honest processors would draw (for tests).
    pub fn honest_values(&self) -> Vec<u64> {
        (0..self.n)
            .map(|i| node_rng(self.seed, i).next_below(self.n as u64))
            .collect()
    }

    /// Builds the honest node for ring position `pos`.
    pub fn honest_node(&self, pos: NodeId) -> Box<dyn Node<WakeMsg>> {
        Box::new(WakeNode::new(self.ids[pos], node_rng(self.seed, pos)))
    }

    /// Builds a node that follows the protocol *honestly* except that it
    /// announces `claimed_id` instead of its true id — the Appendix H
    /// lying deviation that breaks the naive unknown-ids problem
    /// definition (a winner outside the true id set `Ω` yields utility
    /// under `u₀(x) = 1[x ∉ Ω]`, and honest processors cannot tell).
    pub fn node_with_identity(&self, pos: NodeId, claimed_id: u64) -> Box<dyn Node<WakeMsg>> {
        Box::new(WakeNode::new(claimed_id, node_rng(self.seed, pos)))
    }

    /// Every processor wakes spontaneously (it must announce its id).
    pub fn wakes(&self) -> Vec<NodeId> {
        (0..self.n).collect()
    }

    /// Runs with coalition positions replaced by `overrides`.
    pub fn run_with(&self, overrides: Vec<(NodeId, Box<dyn Node<WakeMsg>>)>) -> Execution {
        run_ring(
            self.n,
            |pos| self.honest_node(pos),
            overrides,
            &self.wakes(),
        )
    }

    /// Builds the honest node for position `pos` unboxed, for the cached
    /// engine fast path. `WakeNode` holds no arena-backed storage (its
    /// id buffer grows on the heap per trial), so the arena is unused.
    pub fn honest_ring_node_in(&self, pos: NodeId, _arena: &mut TrialArena) -> WakeNode {
        WakeNode::new(self.ids[pos], node_rng(self.seed, pos))
    }

    /// [`WakeLead::run_with`] through a per-worker [`TrialCache`]: reuses
    /// the cache's engine, node vector, scheduler and result buffers
    /// (every node wakes, via the cache's precomputed id list).
    ///
    /// # Panics
    ///
    /// Panics if the cache was built for a different ring size.
    pub fn run_with_in<'c, D: Node<WakeMsg>>(
        &self,
        overrides: Vec<(NodeId, D)>,
        cache: &'c mut TrialCache<WakeMsg, WakeNode, D>,
    ) -> &'c Execution {
        assert_eq!(
            cache.n(),
            self.n,
            "cache ring size must match the protocol's ring size"
        );
        cache.run_wake_all(|pos, arena| self.honest_ring_node_in(pos, arena), overrides)
    }
}

impl ArenaBacked for WakeNode {}

impl FleProtocol for WakeLead {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> &'static str {
        "WakeLead"
    }

    fn run_honest(&self) -> Execution {
        self.run_with(Vec::new())
    }
}

/// The honest `WakeLead` processor: collect ids, compute the layout, then
/// run the `A-LEADuni` election over it.
pub struct WakeNode {
    my_id: u64,
    rng: SplitMix64,
    /// Ids received so far, in arrival order (`collected[j]` is the id of
    /// the processor `j + 1` hops behind us).
    collected: Vec<u64>,
    election: Option<ElectionState>,
    halted: bool,
}

struct ElectionState {
    n: u64,
    /// My index relative to the origin (minimum id): 0 = origin.
    index: u64,
    /// Ids ordered by index (`ring_ids[i]` = id of the processor at
    /// election index `i`), reconstructed from arrival order.
    ring_ids: Vec<u64>,
    d: u64,
    buffer: u64,
    sum: u64,
    round: u64,
}

impl WakeNode {
    fn new(my_id: u64, rng: SplitMix64) -> Self {
        WakeNode {
            my_id,
            rng,
            collected: Vec::new(),
            election: None,
            halted: false,
        }
    }

    /// Completes the wake-up phase: derive `n`, my index, the id ring, and
    /// start the election (origin sends its data value immediately).
    fn finish_wakeup(&mut self, ctx: &mut Ctx<'_, WakeMsg>) {
        let n = self.collected.len() as u64;
        // collected[j] = id of pred^{j+1}; collected[n−1] = my own id.
        // The processor at forward distance f from me is pred^{n−f}, so
        // its id is collected[n − f − 1].
        let min_pos_in_arrivals = (0..self.collected.len())
            .min_by_key(|&j| self.collected[j])
            .expect("nonempty");
        // Origin is pred^{j+1} where j = min_pos_in_arrivals; my forward
        // distance from the origin is j + 1, i.e. my index.
        let index = (min_pos_in_arrivals as u64 + 1) % n;
        // ring_ids[i] = id of the processor at index i. The processor at
        // index i sits at forward distance (i − index) mod n from me.
        let ring_ids: Vec<u64> = (0..n)
            .map(|i| {
                let fwd = (i + n - index) % n;
                if fwd == 0 {
                    self.my_id
                } else {
                    self.collected[(n - fwd - 1) as usize]
                }
            })
            .collect();
        let d = self.rng.next_below(n);
        let mut st = ElectionState {
            n,
            index,
            ring_ids,
            d,
            buffer: d,
            sum: 0,
            round: 0,
        };
        if st.index == 0 {
            // Origin: announce the data value, then behave as a pipe.
            ctx.send(WakeMsg::Data(st.d));
            st.buffer = u64::MAX; // origin never uses the buffer
        }
        self.election = Some(st);
    }

    fn on_data(&mut self, value: u64, ctx: &mut Ctx<'_, WakeMsg>) {
        let Some(st) = self.election.as_mut() else {
            // Data before our wake-up finished: FIFO makes this impossible
            // for honest senders, so it is a detected deviation.
            self.halted = true;
            ctx.abort();
            return;
        };
        let m = value % st.n;
        st.round += 1;
        st.sum = (st.sum + m) % st.n;
        if st.index == 0 {
            // Origin pipes the first n − 1 receives.
            if st.round < st.n {
                ctx.send(WakeMsg::Data(m));
            } else if m == st.d {
                let winner = st.ring_ids[st.sum as usize];
                ctx.terminate(Some(winner));
            } else {
                self.halted = true;
                ctx.abort();
            }
        } else {
            // Normal: buffer-delay every receive.
            ctx.send(WakeMsg::Data(st.buffer));
            st.buffer = m;
            if st.round == st.n {
                if m == st.d {
                    let winner = st.ring_ids[st.sum as usize];
                    ctx.terminate(Some(winner));
                } else {
                    self.halted = true;
                    ctx.abort();
                }
            }
        }
    }
}

impl Node<WakeMsg> for WakeNode {
    fn on_wake(&mut self, ctx: &mut Ctx<'_, WakeMsg>) {
        ctx.send(WakeMsg::Id(self.my_id));
    }

    fn on_message(&mut self, _from: NodeId, msg: WakeMsg, ctx: &mut Ctx<'_, WakeMsg>) {
        if self.halted {
            return;
        }
        match msg {
            WakeMsg::Id(id) => {
                if self.election.is_some() {
                    // Stray id after wake-up completed: deviation.
                    self.halted = true;
                    ctx.abort();
                    return;
                }
                self.collected.push(id);
                if id == self.my_id {
                    self.finish_wakeup(ctx);
                } else {
                    ctx.send(WakeMsg::Id(id));
                }
            }
            WakeMsg::Data(v) => self.on_data(v, ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_sim::Outcome;

    #[test]
    fn honest_run_elects_an_id() {
        for seed in 0..6 {
            let p = WakeLead::new(7).with_seed(seed);
            let winner = p.run_honest().outcome.elected().expect("honest success");
            assert!(p.ids().contains(&winner), "seed {seed}");
        }
    }

    #[test]
    fn winner_is_the_sum_indexed_id() {
        let p = WakeLead::new(6).with_seed(4);
        let values = p.honest_values();
        // Index computation below mirrors the protocol: indices are
        // assigned relative to the position with the minimal id.
        let origin_pos = (0..6).min_by_key(|&i| p.ids()[i]).expect("nonempty");
        // The value drawn by the processor at election index i:
        let sum: u64 = values.iter().sum::<u64>() % 6;
        let winner_pos = (origin_pos + sum as usize) % 6;
        assert_eq!(
            p.run_honest().outcome,
            Outcome::Elected(p.ids()[winner_pos])
        );
    }

    #[test]
    fn ids_are_distinct_and_in_range() {
        let p = WakeLead::new(32).with_seed(9);
        let mut ids = p.ids().to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 32);
        assert!(ids.iter().all(|&id| id < 1 << WakeLead::ID_BITS));
    }

    #[test]
    fn message_complexity_doubles_a_lead_uni() {
        // Wake-up costs n² id hops, the election n² data hops.
        let n = 9u64;
        let exec = WakeLead::new(n as usize).with_seed(2).run_honest();
        assert_eq!(exec.stats.total_sent(), 2 * n * n);
    }

    #[test]
    fn outcome_marginals_are_uniform_over_positions() {
        let n = 5usize;
        let mut counts = vec![0u32; n];
        for seed in 0..1500 {
            let p = WakeLead::new(n).with_seed(seed);
            let winner = p.run_honest().outcome.elected().expect("honest");
            let pos = p
                .ids()
                .iter()
                .position(|&id| id == winner)
                .expect("member id");
            counts[pos] += 1;
        }
        let expect = 1500.0 / n as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < expect * 0.3, "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn tiny_ring_rejected() {
        let _ = WakeLead::new(1);
    }
}
