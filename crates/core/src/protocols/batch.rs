//! Batch-lockstep honest nodes for the four ring protocols.
//!
//! These are the structure-of-arrays translations of the scalar honest
//! nodes: each node holds its per-trial fields (`d`, `sum`, `buffer`,
//! `v_own`, the phase `store`) as `k`-lane `Vec<u64>`s laid out
//! `[trial0, trial1, …]`, and one activation over the shared
//! [`LockstepEngine`] event stream advances all `k` trials at once. The
//! honest control flow of every protocol here is data-independent (data
//! only feeds *abort* branches, which honest runs never take), so the
//! scalar per-trial branch structure carries over verbatim with each
//! scalar field access widened to a `k`-lane loop.
//!
//! Every branch the scalar node decides on data — the full-circle
//! validation `m == d`, the validator's `v == v_own` check, message
//! parity — becomes a *uniformity* check here: if all lanes agree with
//! the honest outcome the batch proceeds, otherwise the node calls
//! [`LaneCtx::diverge`] and the caller re-runs the group through the
//! scalar path. Batched results are therefore bit-identical to scalar
//! results unconditionally; the fast path simply only engages where it
//! is exact.
//!
//! The phase protocols additionally amortize the output computation: all
//! honest processors of one trial collect identical `d̂`/`v̂` tables, so
//! the first terminator snapshots its tables and evaluates
//! `f` once per *lane* (via the precomputed [`EvalTable`]), and every
//! later terminator merely memcmps its tables against the snapshot and
//! reuses the outputs — turning `n` evaluations of `f` per trial into
//! one evaluation plus `n − 1` comparisons.

use super::{
    fold_mod, node_rng, wrap_sub, wrap_sub_usize, ALeadUni, BasicLead, FleProtocol, PhaseAsyncLead,
    PhaseSumLead, ORIGIN_WAKES,
};
use crate::randfn::{EvalTable, PhaseParams};
use ring_sim::batch::{LaneCtx, LockstepEngine, LockstepNode};
use ring_sim::{default_step_limit, Execution, NodeId};
use std::cell::RefCell;
use std::rc::Rc;

/// Runs one lockstep group on a reusable [`LockstepEngine`]: the batch
/// analogue of [`super::run_ring_honest_into`]. `nodes` must already be
/// configured for the group's lanes (each protocol's
/// `run_honest_batch_into` does this).
///
/// Returns `false` if the group diverged (the caller must re-run the
/// group's trials through the scalar path); on `true` the per-lane
/// [`Execution`]s are available via [`LockstepEngine::execution_into`].
///
/// # Panics
///
/// Panics if the engine's ring size differs from `n` or `nodes.len()`.
pub fn run_ring_honest_batch_into<N: LockstepNode>(
    engine: &mut LockstepEngine,
    n: usize,
    lanes: usize,
    nodes: &mut [N],
    wakes: &[NodeId],
) -> bool {
    assert_eq!(
        engine.n(),
        n,
        "engine ring size must match the protocol's ring size"
    );
    engine.run(lanes, nodes, wakes, default_step_limit(n))
}

/// Rebuilds `nodes` as `n` fresh nodes, or resets them in place when the
/// vector already holds `n` (retaining every inner lane allocation).
fn ensure_nodes<N>(
    nodes: &mut Vec<N>,
    n: usize,
    mut make: impl FnMut(usize) -> N,
    mut reset: impl FnMut(usize, &mut N),
) {
    if nodes.len() == n {
        for (id, node) in nodes.iter_mut().enumerate() {
            reset(id, node);
        }
    } else {
        nodes.clear();
        nodes.extend((0..n).map(&mut make));
    }
}

// ---------------------------------------------------------------------
// Basic-LEAD
// ---------------------------------------------------------------------

/// The `k`-lane honest `Basic-LEAD` processor: scalar control flow
/// (`round` is shared — the lockstep invariant), per-lane `d` and `sum`.
pub struct BatchBasicNode {
    n: u64,
    round: u64,
    d: Vec<u64>,
    sum: Vec<u64>,
}

impl LockstepNode for BatchBasicNode {
    fn on_wake(&mut self, ctx: &mut LaneCtx<'_>) {
        ctx.send(0).copy_from_slice(&self.d);
    }

    fn on_message(&mut self, _tag: u8, lanes: &[u64], ctx: &mut LaneCtx<'_>) {
        let n = self.n;
        self.round += 1;
        if self.round < n {
            let out = ctx.send(0);
            for ((o, s), &x) in out.iter_mut().zip(self.sum.iter_mut()).zip(lanes) {
                let m = fold_mod(x, n);
                *s = wrap_sub(*s + m, n);
                *o = m;
            }
        } else {
            // Scalar: the full-circle value must be the own secret, else
            // abort. All lanes agree in honest runs; otherwise diverge.
            let mut all_own = true;
            for ((s, &d), &x) in self.sum.iter_mut().zip(&self.d).zip(lanes) {
                let m = fold_mod(x, n);
                *s = wrap_sub(*s + m, n);
                all_own &= m == d;
            }
            if all_own {
                ctx.terminate().copy_from_slice(&self.sum);
            } else {
                ctx.diverge();
            }
        }
    }
}

/// Reusable per-worker state for batched honest `Basic-LEAD` groups.
pub struct BasicBatchCache {
    engine: LockstepEngine,
    nodes: Vec<BatchBasicNode>,
    wakes: Vec<NodeId>,
}

impl BasicBatchCache {
    /// Creates the cache for a ring of `n` processors.
    pub fn ring(n: usize) -> Self {
        Self {
            engine: LockstepEngine::new(n),
            nodes: Vec::new(),
            wakes: (0..n).collect(),
        }
    }

    /// Extracts lane `lane`'s [`Execution`] from the last successful
    /// group (see [`LockstepEngine::execution_into`]).
    pub fn execution_into(&self, lane: usize, out: &mut Execution) {
        self.engine.execution_into(lane, out);
    }
}

impl BasicLead {
    /// Runs `seeds.len()` honest trials in lockstep, lane `l` simulating
    /// `self.with_seed(seeds[l])`. Returns `false` if the group diverged
    /// (re-run scalar); on `true` read per-lane results from
    /// [`BasicBatchCache::execution_into`], each bit-identical to
    /// [`BasicLead::run_honest_in`] with that seed.
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from `n` or `seeds` is
    /// empty.
    pub fn run_honest_batch_into(&self, seeds: &[u64], cache: &mut BasicBatchCache) -> bool {
        let n = self.n();
        let k = seeds.len();
        let fill = |id: usize, d: &mut Vec<u64>, sum: &mut Vec<u64>| {
            d.clear();
            match self.pinned_values() {
                Some(vs) => d.resize(k, vs[id]),
                None => d.extend(seeds.iter().map(|&s| node_rng(s, id).next_below(n as u64))),
            }
            sum.clear();
            sum.resize(k, 0);
        };
        ensure_nodes(
            &mut cache.nodes,
            n,
            |id| {
                let mut node = BatchBasicNode {
                    n: n as u64,
                    round: 0,
                    d: Vec::with_capacity(k),
                    sum: Vec::with_capacity(k),
                };
                fill(id, &mut node.d, &mut node.sum);
                node
            },
            |id, node| {
                node.round = 0;
                fill(id, &mut node.d, &mut node.sum);
            },
        );
        run_ring_honest_batch_into(&mut cache.engine, n, k, &mut cache.nodes, &cache.wakes)
    }
}

// ---------------------------------------------------------------------
// A-LEADuni
// ---------------------------------------------------------------------

/// The `k`-lane honest `A-LEADuni` processor: the origin pipes, normals
/// carry the one-round delay `buffer` per lane.
pub struct BatchALeadNode {
    n: u64,
    origin: bool,
    round: u64,
    d: Vec<u64>,
    /// Normal processors' delay buffer (empty for the origin).
    buffer: Vec<u64>,
    sum: Vec<u64>,
}

impl LockstepNode for BatchALeadNode {
    fn on_wake(&mut self, ctx: &mut LaneCtx<'_>) {
        ctx.send(0).copy_from_slice(&self.d);
    }

    fn on_message(&mut self, _tag: u8, lanes: &[u64], ctx: &mut LaneCtx<'_>) {
        let n = self.n;
        if self.origin {
            // Identical to Basic-LEAD's handler: forward immediately.
            self.round += 1;
            if self.round < n {
                let out = ctx.send(0);
                for ((o, s), &x) in out.iter_mut().zip(self.sum.iter_mut()).zip(lanes) {
                    let m = fold_mod(x, n);
                    *s = wrap_sub(*s + m, n);
                    *o = m;
                }
            } else {
                let mut all_own = true;
                for ((s, &d), &x) in self.sum.iter_mut().zip(&self.d).zip(lanes) {
                    let m = fold_mod(x, n);
                    *s = wrap_sub(*s + m, n);
                    all_own &= m == d;
                }
                if all_own {
                    ctx.terminate().copy_from_slice(&self.sum);
                } else {
                    ctx.diverge();
                }
            }
        } else {
            // Scalar order: send the buffer first, then absorb the new
            // value into buffer and sum.
            ctx.send(0).copy_from_slice(&self.buffer);
            self.round += 1;
            let mut all_own = true;
            for (((b, s), &d), &x) in self
                .buffer
                .iter_mut()
                .zip(self.sum.iter_mut())
                .zip(&self.d)
                .zip(lanes)
            {
                let m = fold_mod(x, n);
                *b = m;
                *s = wrap_sub(*s + m, n);
                all_own &= m == d;
            }
            if self.round == n {
                if all_own {
                    ctx.terminate().copy_from_slice(&self.sum);
                } else {
                    ctx.diverge();
                }
            }
        }
    }
}

/// Reusable per-worker state for batched honest `A-LEADuni` groups.
pub struct ALeadBatchCache {
    engine: LockstepEngine,
    nodes: Vec<BatchALeadNode>,
}

impl ALeadBatchCache {
    /// Creates the cache for a ring of `n` processors.
    pub fn ring(n: usize) -> Self {
        Self {
            engine: LockstepEngine::new(n),
            nodes: Vec::new(),
        }
    }

    /// Extracts lane `lane`'s [`Execution`] from the last successful
    /// group (see [`LockstepEngine::execution_into`]).
    pub fn execution_into(&self, lane: usize, out: &mut Execution) {
        self.engine.execution_into(lane, out);
    }
}

impl ALeadUni {
    /// Runs `seeds.len()` honest trials in lockstep, lane `l` simulating
    /// `self.with_seed(seeds[l])` — see
    /// [`BasicLead::run_honest_batch_into`] for the contract.
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from `n` or `seeds` is
    /// empty.
    pub fn run_honest_batch_into(&self, seeds: &[u64], cache: &mut ALeadBatchCache) -> bool {
        let n = self.n();
        let k = seeds.len();
        let fill = |id: usize, node: &mut BatchALeadNode| {
            node.round = 0;
            node.d.clear();
            match self.pinned_values() {
                Some(vs) => node.d.resize(k, vs[id]),
                None => node
                    .d
                    .extend(seeds.iter().map(|&s| node_rng(s, id).next_below(n as u64))),
            }
            node.sum.clear();
            node.sum.resize(k, 0);
            node.buffer.clear();
            if !node.origin {
                // A normal processor's buffer starts holding its secret.
                node.buffer.extend_from_slice(&node.d);
            }
        };
        ensure_nodes(
            &mut cache.nodes,
            n,
            |id| {
                let mut node = BatchALeadNode {
                    n: n as u64,
                    origin: id == 0,
                    round: 0,
                    d: Vec::with_capacity(k),
                    buffer: Vec::with_capacity(k),
                    sum: Vec::with_capacity(k),
                };
                fill(id, &mut node);
                node
            },
            &fill,
        );
        run_ring_honest_batch_into(&mut cache.engine, n, k, &mut cache.nodes, ORIGIN_WAKES)
    }
}

// ---------------------------------------------------------------------
// Phase protocols
// ---------------------------------------------------------------------

/// Message tag of the phase protocols' data wave.
const DATA_TAG: u8 = 0;
/// Message tag of the phase protocols' validation wave.
const VAL_TAG: u8 = 1;

/// How a batched phase group computes terminal outputs.
enum BatchOutputRule {
    /// `f(d̂, v̂_1..v̂_{n−l})` via the precomputed strided table.
    Random(EvalTable),
    /// `Σ d̂ (mod n)` — the Appendix E.4 ablation.
    Sum,
}

/// The group-level output amortization state shared by all `n` nodes of
/// one batched phase group (see the module docs): the first terminator
/// publishes its collected tables and the per-lane outputs; later
/// terminators compare and reuse.
struct PhaseShared {
    params: PhaseParams,
    rule: BatchOutputRule,
    /// `true` once the first terminator published its snapshot.
    ready: bool,
    /// Per-lane outputs of the snapshot's tables.
    outs: Vec<u64>,
    /// The first terminator's collected data table (`n·k` slot-major).
    data_snap: Vec<u64>,
    /// The first terminator's `f`-relevant validation values
    /// (`vals_in_f·k` slot-major).
    vals_snap: Vec<u64>,
}

impl PhaseShared {
    fn reset(&mut self) {
        self.ready = false;
    }
}

/// The `k`-lane honest phase processor (`PhaseAsyncLead` /
/// `PhaseSumLead`, differing only in the shared output rule).
///
/// The `store` is the slot-major SoA form of the scalar node's packed
/// `data ‖ vals` table: slot `i`'s lanes occupy
/// `store[i·k .. (i+1)·k]`. Slots are never read before being written
/// within a run, so the store is *not* re-zeroed between groups.
pub struct BatchPhaseNode {
    id: usize,
    origin: bool,
    n: usize,
    m: u64,
    /// Completed data rounds (shared across lanes — lockstep invariant).
    round: usize,
    expect_data: bool,
    lanes: usize,
    d: Vec<u64>,
    /// Pre-drawn validation values (the scalar node draws `v_own` lazily
    /// at its validator round, but it is the node stream's second draw,
    /// so drawing it at setup is stream-identical).
    v_own: Vec<u64>,
    buffer: Vec<u64>,
    store: Vec<u64>,
    shared: Rc<RefCell<PhaseShared>>,
}

impl BatchPhaseNode {
    /// The round this processor validates (0-indexed `p` validates round
    /// `p + 1`).
    fn validator_round(&self) -> usize {
        self.id + 1
    }

    /// The round `r ∈ 1..=n` whose data value the current delivery
    /// carries — conditional subtracts, as in the scalar node.
    fn data_round(&self) -> usize {
        if self.round < self.n {
            self.round
        } else {
            self.round % self.n
        }
    }

    /// Terminates all lanes, computing or reusing the group's outputs.
    fn finish(&mut self, ctx: &mut LaneCtx<'_>) {
        let (n, k) = (self.n, self.lanes);
        let mut sh = self.shared.borrow_mut();
        let vif = sh.params.vals_in_f();
        let data = &self.store[..n * k];
        // The scalar output reads `vals[1..=vals_in_f]` of the packed
        // store — slots `n+1 .. n+1+vals_in_f` here.
        let vals = &self.store[(n + 1) * k..(n + 1 + vif) * k];
        let sh = &mut *sh;
        if !sh.ready {
            sh.ready = true;
            sh.data_snap.clear();
            sh.data_snap.extend_from_slice(data);
            sh.vals_snap.clear();
            sh.vals_snap.extend_from_slice(vals);
            sh.outs.clear();
            match &sh.rule {
                BatchOutputRule::Random(table) => {
                    for lane in 0..k {
                        sh.outs.push(table.eval_strided(data, vals, k, lane));
                    }
                }
                BatchOutputRule::Sum => {
                    for lane in 0..k {
                        let sum: u64 = (0..n).map(|i| data[i * k + lane]).sum();
                        sh.outs.push(sum % n as u64);
                    }
                }
            }
            ctx.terminate().copy_from_slice(&sh.outs);
        } else if sh.data_snap == data && sh.vals_snap == vals {
            // Identical inputs to a pure function: the scalar node would
            // compute the identical output — reuse it.
            ctx.terminate().copy_from_slice(&sh.outs);
        } else {
            // Scalar processors would disagree; that is a legal scalar
            // outcome (Disagreement) this path cannot represent.
            ctx.diverge();
        }
    }
}

impl LockstepNode for BatchPhaseNode {
    fn on_wake(&mut self, ctx: &mut LaneCtx<'_>) {
        // Scalar origin wake: record own data, open round 1, emit the
        // first data and validation waves.
        let k = self.lanes;
        self.store[..k].copy_from_slice(&self.d);
        self.round = 1;
        ctx.send(DATA_TAG).copy_from_slice(&self.d);
        ctx.send(VAL_TAG).copy_from_slice(&self.v_own);
    }

    fn on_message(&mut self, tag: u8, lanes: &[u64], ctx: &mut LaneCtx<'_>) {
        let (n, k) = (self.n, self.lanes);
        match (tag, self.expect_data) {
            (DATA_TAG, true) if !self.origin => {
                self.expect_data = false;
                self.round += 1;
                // Buffered secret sharing: forward the buffer, keep x.
                ctx.send(DATA_TAG).copy_from_slice(&self.buffer);
                let r = self.data_round();
                let base = wrap_sub_usize(self.id + n - r, n) * k;
                let mut all_own = true;
                for (((slot, b), &d), &raw) in self.store[base..base + k]
                    .iter_mut()
                    .zip(self.buffer.iter_mut())
                    .zip(&self.d)
                    .zip(lanes)
                {
                    let x = fold_mod(raw, n as u64);
                    *slot = x;
                    *b = x;
                    all_own &= x == d;
                }
                if self.round == self.validator_round() {
                    ctx.send(VAL_TAG).copy_from_slice(&self.v_own);
                }
                if self.round == n && !all_own {
                    ctx.diverge();
                }
            }
            (DATA_TAG, true) => {
                self.expect_data = false;
                let r = self.data_round();
                let base = wrap_sub_usize(n - r, n) * k;
                let mut all_own = true;
                for (((slot, b), &d), &raw) in self.store[base..base + k]
                    .iter_mut()
                    .zip(self.buffer.iter_mut())
                    .zip(&self.d)
                    .zip(lanes)
                {
                    let x = fold_mod(raw, n as u64);
                    *slot = x;
                    *b = x;
                    all_own &= x == d;
                }
                if self.round == n && !all_own {
                    ctx.diverge();
                }
            }
            (VAL_TAG, false) => {
                self.expect_data = true;
                let vr = if self.origin {
                    1
                } else {
                    self.validator_round()
                };
                if self.round == vr {
                    // Our own validation value coming full circle: absorb,
                    // do not forward. Any mismatch is the scalar abort.
                    let base = (n + self.round) * k;
                    let mut intact = true;
                    for ((slot, &own), &raw) in self.store[base..base + k]
                        .iter_mut()
                        .zip(&self.v_own)
                        .zip(lanes)
                    {
                        intact &= fold_mod(raw, self.m) == own;
                        *slot = own;
                    }
                    if !intact {
                        ctx.diverge();
                        return;
                    }
                } else {
                    let base = (n + self.round) * k;
                    let out = ctx.send(VAL_TAG);
                    for ((slot, o), &raw) in
                        self.store[base..base + k].iter_mut().zip(out).zip(lanes)
                    {
                        let y = fold_mod(raw, self.m);
                        *slot = y;
                        *o = y;
                    }
                }
                if self.round == n {
                    self.finish(ctx);
                } else if self.origin {
                    // The origin launches the next round's data wave.
                    ctx.send(DATA_TAG).copy_from_slice(&self.buffer);
                    self.round += 1;
                }
            }
            // Parity violation — the scalar abort this path cannot take.
            _ => ctx.diverge(),
        }
    }
}

/// Configuration signature of a phase batch cache's prepared state; a
/// change (different protocol, `fn_key`, or ablated `m`) rebuilds the
/// shared output rule and [`EvalTable`].
#[derive(Clone, Copy, PartialEq, Eq)]
enum PhaseSig {
    Random { params: PhaseParams, key: u64 },
    Sum { params: PhaseParams },
}

/// Reusable per-worker state for batched honest phase-protocol groups
/// (`PhaseAsyncLead` and `PhaseSumLead` share it — they differ only in
/// the output rule).
pub struct PhaseBatchCache {
    engine: LockstepEngine,
    nodes: Vec<BatchPhaseNode>,
    shared: Rc<RefCell<PhaseShared>>,
    sig: Option<PhaseSig>,
}

impl PhaseBatchCache {
    /// Creates the cache for a ring of `n` processors.
    pub fn ring(n: usize) -> Self {
        Self {
            engine: LockstepEngine::new(n),
            nodes: Vec::new(),
            shared: Rc::new(RefCell::new(PhaseShared {
                params: PhaseParams::for_ring(n.max(2)),
                rule: BatchOutputRule::Sum,
                ready: false,
                outs: Vec::new(),
                data_snap: Vec::new(),
                vals_snap: Vec::new(),
            })),
            sig: None,
        }
    }

    /// Extracts lane `lane`'s [`Execution`] from the last successful
    /// group (see [`LockstepEngine::execution_into`]).
    pub fn execution_into(&self, lane: usize, out: &mut Execution) {
        self.engine.execution_into(lane, out);
    }

    /// Installs `sig`'s output rule if the configuration changed, resets
    /// the shared state, and runs the group.
    fn run_group(
        &mut self,
        params: PhaseParams,
        sig: PhaseSig,
        make_rule: impl FnOnce() -> BatchOutputRule,
        seeds: &[u64],
    ) -> bool {
        let n = params.n;
        let k = seeds.len();
        if self.sig != Some(sig) {
            let mut sh = self.shared.borrow_mut();
            sh.params = params;
            sh.rule = make_rule();
            self.sig = Some(sig);
            // A config change invalidates prepared nodes (their shared
            // handle is still right, but force a clean rebuild so the
            // node-level params match).
            drop(sh);
            self.nodes.clear();
        }
        self.shared.borrow_mut().reset();
        let shared = &self.shared;
        let fill = |id: usize, node: &mut BatchPhaseNode| {
            node.round = 0;
            node.expect_data = true;
            node.lanes = k;
            node.m = params.m;
            node.d.clear();
            node.v_own.clear();
            for &seed in seeds {
                // The scalar node's stream: data value first, validation
                // value second.
                let mut rng = node_rng(seed, id);
                node.d.push(rng.next_below(n as u64));
                node.v_own.push(rng.next_below(params.m));
            }
            node.buffer.clear();
            node.buffer.extend_from_slice(&node.d);
            // Grow (never zero) the store: every slot the run reads is
            // written first, so stale lanes from the previous group are
            // harmless — this skips an O(n·k) memset per group.
            if node.store.len() != (2 * n + 1) * k {
                node.store.clear();
                node.store.resize((2 * n + 1) * k, 0);
            }
        };
        ensure_nodes(
            &mut self.nodes,
            n,
            |id| {
                let mut node = BatchPhaseNode {
                    id,
                    origin: id == 0,
                    n,
                    m: params.m,
                    round: 0,
                    expect_data: true,
                    lanes: k,
                    d: Vec::with_capacity(k),
                    v_own: Vec::with_capacity(k),
                    buffer: Vec::with_capacity(k),
                    store: Vec::new(),
                    shared: Rc::clone(shared),
                };
                fill(id, &mut node);
                node
            },
            &fill,
        );
        run_ring_honest_batch_into(&mut self.engine, n, k, &mut self.nodes, ORIGIN_WAKES)
    }
}

impl PhaseAsyncLead {
    /// Runs `seeds.len()` honest trials in lockstep, lane `l` simulating
    /// `self.with_seed(seeds[l])` — see
    /// [`BasicLead::run_honest_batch_into`] for the contract. The
    /// instance's `fn_key` (and any ablated validation range) applies to
    /// every lane, so fn_key-per-config sweeps batch naturally.
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from `n` or `seeds` is
    /// empty.
    pub fn run_honest_batch_into(&self, seeds: &[u64], cache: &mut PhaseBatchCache) -> bool {
        let params = self.params();
        let f = self.random_fn();
        cache.run_group(
            params,
            PhaseSig::Random {
                params,
                key: f.key(),
            },
            || BatchOutputRule::Random(EvalTable::new(&f, params.n, params.vals_in_f())),
            seeds,
        )
    }
}

impl PhaseSumLead {
    /// Runs `seeds.len()` honest trials in lockstep, lane `l` simulating
    /// `self.with_seed(seeds[l])` — see
    /// [`BasicLead::run_honest_batch_into`] for the contract.
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from `n` or `seeds` is
    /// empty.
    pub fn run_honest_batch_into(&self, seeds: &[u64], cache: &mut PhaseBatchCache) -> bool {
        let params = self.params();
        cache.run_group(
            params,
            PhaseSig::Sum { params },
            || BatchOutputRule::Sum,
            seeds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_sim::{Engine, Topology};

    fn seeds(base: u64, k: usize) -> Vec<u64> {
        (0..k as u64).map(|i| base.wrapping_add(i * 977)).collect()
    }

    #[test]
    fn basic_batch_matches_scalar() {
        let n = 8;
        let p = BasicLead::new(n);
        let mut cache = BasicBatchCache::ring(n);
        let mut engine = Engine::new(Topology::ring(n));
        let mut exec = Execution::default();
        for k in [1, 3, 8] {
            let seeds = seeds(42, k);
            assert!(p.run_honest_batch_into(&seeds, &mut cache));
            for (lane, &s) in seeds.iter().enumerate() {
                cache.execution_into(lane, &mut exec);
                let scalar = p.clone().with_seed(s).run_honest_in(&mut engine);
                assert_eq!(exec, scalar, "k={k} lane={lane}");
            }
        }
    }

    #[test]
    fn alead_batch_matches_scalar() {
        let n = 9;
        let p = ALeadUni::new(n);
        let mut cache = ALeadBatchCache::ring(n);
        let mut engine = Engine::new(Topology::ring(n));
        let mut exec = Execution::default();
        for k in [1, 2, 7] {
            let seeds = seeds(7, k);
            assert!(p.run_honest_batch_into(&seeds, &mut cache));
            for (lane, &s) in seeds.iter().enumerate() {
                cache.execution_into(lane, &mut exec);
                let scalar = p.clone().with_seed(s).run_honest_in(&mut engine);
                assert_eq!(exec, scalar, "k={k} lane={lane}");
            }
        }
    }

    #[test]
    fn phase_async_batch_matches_scalar() {
        let n = 12;
        let p = PhaseAsyncLead::new(n).with_fn_key(5);
        let mut cache = PhaseBatchCache::ring(n);
        let mut engine = Engine::new(Topology::ring(n));
        let mut exec = Execution::default();
        for k in [1, 4, 8] {
            let seeds = seeds(1000, k);
            assert!(p.run_honest_batch_into(&seeds, &mut cache));
            for (lane, &s) in seeds.iter().enumerate() {
                cache.execution_into(lane, &mut exec);
                let scalar = p.with_seed(s).run_honest_in(&mut engine);
                assert_eq!(exec, scalar, "k={k} lane={lane}");
            }
        }
    }

    #[test]
    fn phase_sum_batch_matches_scalar() {
        let n = 6;
        let p = PhaseSumLead::new(n);
        let mut cache = PhaseBatchCache::ring(n);
        let mut engine = Engine::new(Topology::ring(n));
        let mut exec = Execution::default();
        let seeds = seeds(31, 5);
        assert!(p.run_honest_batch_into(&seeds, &mut cache));
        for (lane, &s) in seeds.iter().enumerate() {
            cache.execution_into(lane, &mut exec);
            let scalar = p.with_seed(s).run_honest_in(&mut engine);
            assert_eq!(exec, scalar, "lane={lane}");
        }
    }

    #[test]
    fn one_phase_cache_serves_both_rules() {
        // Re-keying or switching protocols on one cache must rebuild the
        // prepared tables, not reuse stale ones.
        let n = 8;
        let mut cache = PhaseBatchCache::ring(n);
        let mut engine = Engine::new(Topology::ring(n));
        let mut exec = Execution::default();
        let seeds = seeds(5, 4);
        for trial in 0..2 {
            for key in [0, 9] {
                let p = PhaseAsyncLead::new(n).with_fn_key(key);
                assert!(p.run_honest_batch_into(&seeds, &mut cache));
                cache.execution_into(trial, &mut exec);
                assert_eq!(exec, p.with_seed(seeds[trial]).run_honest_in(&mut engine));
            }
            let p = PhaseSumLead::new(n);
            assert!(p.run_honest_batch_into(&seeds, &mut cache));
            cache.execution_into(trial, &mut exec);
            assert_eq!(exec, p.with_seed(seeds[trial]).run_honest_in(&mut engine));
        }
    }

    #[test]
    fn pinned_values_batch_matches_scalar() {
        let n = 5;
        let vals = vec![3, 1, 4, 1, 2];
        let p = BasicLead::new(n).with_values(vals.clone());
        let mut cache = BasicBatchCache::ring(n);
        let mut engine = Engine::new(Topology::ring(n));
        let mut exec = Execution::default();
        let seeds = seeds(0, 3);
        assert!(p.run_honest_batch_into(&seeds, &mut cache));
        cache.execution_into(2, &mut exec);
        assert_eq!(exec, p.run_honest_in(&mut engine));

        let q = ALeadUni::new(n).with_values(vals);
        let mut cache = ALeadBatchCache::ring(n);
        assert!(q.run_honest_batch_into(&seeds, &mut cache));
        cache.execution_into(0, &mut exec);
        assert_eq!(exec, q.run_honest_in(&mut engine));
    }
}
