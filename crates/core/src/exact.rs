//! Exact outcome distributions by exhaustive input enumeration.
//!
//! The paper's probability space is the honest processors' secret values,
//! `χ = [n]^{n−k}` (Appendix D preliminaries) — for small rings it is
//! *finite and enumerable*, so fairness and attack claims can be verified
//! **exactly** instead of by Monte-Carlo sampling:
//!
//! * an FLE protocol is fair iff every leader's count is exactly
//!   `|χ| / n`;
//! * an attack "controls the outcome" iff its target's count is `|χ|`;
//! * Lemma 2.4's resilience ⇄ unbias translation can be checked with
//!   rational arithmetic on counts rather than estimates.
//!
//! Use [`crate::protocols::BasicLead::with_values`] /
//! [`crate::protocols::ALeadUni::with_values`] to pin inputs, and
//! [`exact_distribution`] to fold a runner over the whole space.

use ring_sim::Outcome;

/// The exact outcome distribution of a protocol (or deviation) over an
/// exhaustively enumerated input space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactDistribution {
    /// `counts[j]` = number of inputs electing processor `j`.
    pub counts: Vec<u64>,
    /// Number of inputs whose execution failed.
    pub fails: u64,
    /// Total inputs enumerated (`Σ counts + fails`).
    pub total: u64,
}

impl ExactDistribution {
    /// `true` iff every leader is elected on exactly `total / n` inputs
    /// and nothing fails — the *fair leader election* definition, checked
    /// with integer arithmetic.
    pub fn is_exactly_uniform(&self) -> bool {
        let n = self.counts.len() as u64;
        self.fails == 0
            && self.total.is_multiple_of(n)
            && self.counts.iter().all(|&c| c == self.total / n)
    }

    /// The largest single-leader probability, `max_j Pr[outcome = j]`.
    pub fn max_probability(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts.iter().copied().max().unwrap_or(0) as f64 / self.total as f64
    }

    /// The exact unbias slack `ε = max_j Pr[outcome = j] − 1/n`
    /// (Definition of ε-k-unbiased, Section 2).
    pub fn epsilon(&self) -> f64 {
        self.max_probability() - 1.0 / self.counts.len() as f64
    }

    /// Probability that the execution fails.
    pub fn fail_probability(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.fails as f64 / self.total as f64
    }

    /// The exact expected rational utility `E[u]` of a processor whose
    /// utility vector over leaders is `utility` (with `u(FAIL) = 0`,
    /// Definition 2.1).
    ///
    /// # Panics
    ///
    /// Panics if `utility.len()` differs from the number of leaders.
    pub fn expected_utility(&self, utility: &[f64]) -> f64 {
        assert_eq!(utility.len(), self.counts.len(), "one utility per leader");
        if self.total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .zip(utility)
            .map(|(&c, &u)| c as f64 * u)
            .sum::<f64>()
            / self.total as f64
    }
}

/// Enumerates `[base]^len` in odometer order, calling `visit` with each
/// assignment. `O(base^len)` — intended for `base^len ≲ 10⁷`.
///
/// # Panics
///
/// Panics if `base == 0`.
pub fn for_each_assignment(base: u64, len: usize, mut visit: impl FnMut(&[u64])) {
    assert!(base >= 1, "empty value domain");
    let mut digits = vec![0u64; len];
    loop {
        visit(&digits);
        // Increment the odometer.
        let mut i = 0;
        loop {
            if i == len {
                return;
            }
            digits[i] += 1;
            if digits[i] < base {
                break;
            }
            digits[i] = 0;
            i += 1;
        }
    }
}

/// Computes the exact outcome distribution of a ring protocol over all
/// assignments of secret values to the positions in `free` (everything
/// else is controlled by the runner — typically coalition positions whose
/// nodes ignore their pinned value).
///
/// `run` receives a full length-`n` value vector (entries outside `free`
/// are zero) and returns the execution outcome.
///
/// # Panics
///
/// Panics if a position in `free` is `≥ n` or duplicated.
pub fn exact_distribution(
    n: usize,
    free: &[usize],
    mut run: impl FnMut(&[u64]) -> Outcome,
) -> ExactDistribution {
    assert!(free.iter().all(|&p| p < n), "free position out of range");
    let mut seen = vec![false; n];
    for &p in free {
        assert!(!seen[p], "duplicate free position {p}");
        seen[p] = true;
    }
    let mut counts = vec![0u64; n];
    let mut fails = 0u64;
    let mut total = 0u64;
    let mut values = vec![0u64; n];
    for_each_assignment(n as u64, free.len(), |digits| {
        for (&pos, &v) in free.iter().zip(digits) {
            values[pos] = v;
        }
        total += 1;
        match run(&values) {
            Outcome::Elected(j) if (j as usize) < n => counts[j as usize] += 1,
            Outcome::Elected(_) => fails += 1,
            Outcome::Fail(_) => fails += 1,
        }
    });
    ExactDistribution {
        counts,
        fails,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{ALeadUni, BasicLead, FleProtocol};

    #[test]
    fn odometer_covers_the_whole_space() {
        let mut seen = Vec::new();
        for_each_assignment(3, 2, |d| seen.push((d[0], d[1])));
        assert_eq!(seen.len(), 9);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 9);
        assert_eq!(seen[0], (0, 0));
        assert_eq!(seen[8], (2, 2));
    }

    #[test]
    fn odometer_handles_empty_assignments() {
        let mut calls = 0;
        for_each_assignment(5, 0, |_| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn basic_lead_is_exactly_fair() {
        // All 4⁴ = 256 inputs: each leader elected exactly 64 times.
        let n = 4;
        let free: Vec<usize> = (0..n).collect();
        let dist = exact_distribution(n, &free, |values| {
            BasicLead::new(n)
                .with_values(values.to_vec())
                .run_honest()
                .outcome
        });
        assert_eq!(dist.total, 256);
        assert!(dist.is_exactly_uniform(), "{dist:?}");
        assert_eq!(dist.epsilon(), 0.0);
    }

    #[test]
    fn a_lead_uni_is_exactly_fair() {
        let n = 3;
        let free: Vec<usize> = (0..n).collect();
        let dist = exact_distribution(n, &free, |values| {
            ALeadUni::new(n)
                .with_values(values.to_vec())
                .run_honest()
                .outcome
        });
        assert_eq!(dist.total, 27);
        assert!(dist.is_exactly_uniform(), "{dist:?}");
    }

    #[test]
    fn expected_utility_is_count_weighted() {
        let dist = ExactDistribution {
            counts: vec![2, 1, 1],
            fails: 0,
            total: 4,
        };
        // u = indicator of leader 0.
        assert!((dist.expected_utility(&[1.0, 0.0, 0.0]) - 0.5).abs() < 1e-12);
        // FAIL contributes zero utility.
        let dist = ExactDistribution {
            counts: vec![1, 0, 0],
            fails: 3,
            total: 4,
        };
        assert!((dist.expected_utility(&[1.0, 1.0, 1.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn uniformity_check_requires_zero_fails() {
        let dist = ExactDistribution {
            counts: vec![2, 2],
            fails: 1,
            total: 5,
        };
        assert!(!dist.is_exactly_uniform());
        assert!((dist.fail_probability() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate free position")]
    fn duplicate_positions_panic() {
        let _ = exact_distribution(3, &[1, 1], |_| Outcome::Elected(0));
    }
}
