//! Fair consensus for rational agents, built on fair leader election —
//! the Afek et al. building block the paper's Section 1.1 describes
//! ("they consider protocols for Fair Consensus and for Renaming").
//!
//! Each processor holds an input bit. During `A-LEADuni`'s secret
//! sharing, every processor's message *packs* its input alongside its
//! secret (`value = d + n·input`); because the election sums values
//! `mod n`, the packed bit is invisible to the election itself, yet by
//! termination every processor has seen every packed value in a known
//! order (processor `i`'s `r`-th receive originates at `i − r mod n`).
//! Everyone therefore decides the *elected leader's* input — agreement
//! and validity hold by construction, and the decided input is chosen
//! uniformly among the processors' inputs, which is exactly what makes
//! the consensus *fair* for rational agents with preferences over the
//! decision: resilience reduces to the resilience of the underlying
//! election.

use crate::protocols::{node_rng, run_ring};
use ring_sim::{Ctx, Execution, Node, NodeId, Outcome};

/// Fair binary consensus over an `A-LEADuni`-style election.
///
/// # Examples
///
/// ```
/// use fle_core::consensus::FairConsensus;
///
/// let inputs = vec![true, false, true, true, false, true];
/// let consensus = FairConsensus::new(inputs.clone()).with_seed(4);
/// let (decision, leader) = consensus.run_honest().expect("honest runs succeed");
/// assert_eq!(decision, inputs[leader as usize]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FairConsensus {
    inputs: Vec<bool>,
    seed: u64,
}

impl FairConsensus {
    /// Creates an instance; `inputs[i]` is processor `i`'s proposal.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 inputs are given.
    pub fn new(inputs: Vec<bool>) -> Self {
        assert!(inputs.len() >= 2, "consensus needs n >= 2");
        Self { inputs, seed: 0 }
    }

    /// Sets the randomness seed for the processors' secret values.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of processors.
    pub fn n(&self) -> usize {
        self.inputs.len()
    }

    /// Builds the honest node for position `id`.
    pub fn honest_node(&self, id: NodeId) -> Box<dyn Node<u64>> {
        let n = self.n();
        let d = node_rng(self.seed, id).next_below(n as u64);
        let node = ConsensusNode {
            n: n as u64,
            id,
            packed: d + n as u64 * u64::from(self.inputs[id]),
            buffer: 0,
            sum: 0,
            round: 0,
            inputs_seen: vec![false; n],
            is_origin: id == 0,
        };
        let mut node = node;
        node.buffer = node.packed;
        Box::new(node)
    }

    /// Runs the consensus with adversarial `overrides`; returns the raw
    /// execution (outputs encode `decision`, see [`FairConsensus::decode`]).
    pub fn run_with(&self, overrides: Vec<(NodeId, Box<dyn Node<u64>>)>) -> Execution {
        run_ring(self.n(), |id| self.honest_node(id), overrides, &[0])
    }

    /// Runs honestly and decodes `(decision, leader)`; `None` on failure.
    pub fn run_honest(&self) -> Option<(bool, u64)> {
        Self::decode(self.run_with(Vec::new()).outcome)
    }

    /// Decodes a consensus outcome: node outputs encode the pair as
    /// `2·leader + decision`, so unanimity of the output implies
    /// unanimity of both the leader and the decision.
    pub fn decode(outcome: Outcome) -> Option<(bool, u64)> {
        match outcome {
            Outcome::Elected(v) => Some(((v & 1) == 1, v >> 1)),
            Outcome::Fail(_) => None,
        }
    }
}

/// An `A-LEADuni` node over packed `(secret, input)` values that decides
/// the elected leader's input.
struct ConsensusNode {
    n: u64,
    id: NodeId,
    /// `d + n·input` — what we actually send; the returning value must
    /// match it exactly (validating both the secret and the input bit).
    packed: u64,
    buffer: u64,
    sum: u64,
    round: u64,
    inputs_seen: Vec<bool>,
    is_origin: bool,
}

impl ConsensusNode {
    /// Records the packed value received in round `round` (1-based),
    /// which originates at `id − round mod n` (origin: `n − round`).
    fn record(&mut self, packed: u64) {
        let n = self.n as usize;
        let r = self.round as usize;
        let src = if self.is_origin {
            (n - (r % n)) % n
        } else {
            (self.id + n - (r % n)) % n
        };
        self.inputs_seen[src] = packed / self.n == 1;
    }

    fn finish(&mut self, last: u64, ctx: &mut Ctx<'_, u64>) {
        // Validation: the packed value returning must be exactly ours.
        if last != self.packed {
            ctx.abort();
            return;
        }
        let leader = self.sum % self.n;
        let decision = self.inputs_seen[leader as usize];
        // Output encodes both so the engine can check unanimity of the
        // (leader, decision) pair: 2·leader + decision.
        ctx.terminate(Some(2 * leader + u64::from(decision)));
    }
}

impl Node<u64> for ConsensusNode {
    fn on_wake(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.is_origin {
            ctx.send(self.packed);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
        // Packed values live in [0, 2n); anything else is a deviation,
        // but reduce like the base protocol and let validation catch it.
        let m = msg % (2 * self.n);
        self.round += 1;
        self.sum = (self.sum + m) % self.n;
        self.record(m);
        if self.is_origin {
            if self.round < self.n {
                ctx.send(m);
            } else {
                self.finish(m, ctx);
            }
        } else {
            ctx.send(self.buffer);
            self.buffer = m;
            if self.round == self.n {
                self.finish(m, ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{honest_data_values, ALeadUni, FleProtocol};

    #[test]
    fn decides_the_elected_leaders_input() {
        for n in [2usize, 5, 12] {
            for seed in 0..8 {
                let inputs: Vec<bool> = (0..n)
                    .map(|i| (i * 7 + seed as usize).is_multiple_of(3))
                    .collect();
                let c = FairConsensus::new(inputs.clone()).with_seed(seed);
                let (decision, leader) = c.run_honest().expect("honest consensus succeeds");
                // The leader matches the plain election on the same seed.
                let expected_leader = ALeadUni::new(n)
                    .with_seed(seed)
                    .run_honest()
                    .outcome
                    .elected()
                    .unwrap();
                assert_eq!(leader, expected_leader, "n={n} seed={seed}");
                assert_eq!(decision, inputs[leader as usize], "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn packing_does_not_perturb_the_election() {
        // Σ(d + n·b) ≡ Σd (mod n): the packed bits are election-invisible.
        let n = 9usize;
        let seed = 3;
        let d = honest_data_values(seed, n);
        let all_true = FairConsensus::new(vec![true; n]).with_seed(seed);
        let (_, leader) = all_true.run_honest().unwrap();
        assert_eq!(leader, d.iter().sum::<u64>() % n as u64);
    }

    #[test]
    fn decision_is_fair_when_inputs_split() {
        // Half the processors propose true: the decision should be true
        // about half the time — fairness transfers from the election.
        let n = 8usize;
        let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let trials = 2000u64;
        let mut trues = 0;
        for seed in 0..trials {
            let c = FairConsensus::new(inputs.clone()).with_seed(seed);
            if c.run_honest().expect("honest").0 {
                trues += 1;
            }
        }
        let freq = trues as f64 / trials as f64;
        assert!((freq - 0.5).abs() < 0.05, "Pr[true] = {freq}");
    }

    #[test]
    fn unanimous_inputs_always_decide_that_value() {
        // Validity in the strong sense.
        for value in [true, false] {
            let c = FairConsensus::new(vec![value; 6]).with_seed(9);
            assert_eq!(c.run_honest().unwrap().0, value);
        }
    }

    #[test]
    fn tampering_with_a_packed_value_fails() {
        struct BitFlipper {
            seen: u32,
        }
        impl Node<u64> for BitFlipper {
            fn on_message(&mut self, _f: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
                self.seen += 1;
                // Flip the packed input bit of the third message through.
                ctx.send(if self.seen == 3 { msg ^ 8 } else { msg });
            }
        }
        let c = FairConsensus::new(vec![true, false, true, false, true, false, true, false])
            .with_seed(2);
        let exec = c.run_with(vec![(3, Box::new(BitFlipper { seen: 0 }))]);
        assert!(exec.outcome.is_fail(), "{:?}", exec.outcome);
    }
}
