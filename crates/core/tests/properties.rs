//! Property-based tests for the core protocols and layout algebra.

use fle_core::protocols::{
    honest_data_values, ALeadUni, BasicLead, FleProtocol, PhaseAsyncLead, PhaseSumLead,
};
use fle_core::reductions::elect_from_coins;
use fle_core::{Coalition, RandomFn};
use proptest::prelude::*;
use ring_sim::Outcome;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Layout algebra: Σ l_j = n − k for arbitrary coalitions
    /// (Definition 3.1's partition property).
    #[test]
    fn distances_partition_honest_processors(
        n in 4usize..200,
        picks in proptest::collection::btree_set(0usize..200, 1..20),
    ) {
        let positions: Vec<usize> = picks.into_iter().filter(|&p| p < n).collect();
        prop_assume!(!positions.is_empty() && positions.len() < n);
        let c = Coalition::new(n, positions).unwrap();
        prop_assert_eq!(c.distances().iter().sum::<usize>(), c.honest_count());
        let seg_total: usize = c.segments().iter().map(|s| s.len()).sum();
        prop_assert_eq!(seg_total, c.honest_count());
        prop_assert_eq!(c.exposed().len(), c.distances().iter().filter(|&&l| l > 0).count());
    }

    /// Honest A-LEADuni and Basic-LEAD both elect Σ dᵢ mod n, with exact
    /// message complexity n per processor.
    #[test]
    fn sum_protocols_elect_the_sum(n in 2usize..48, seed in any::<u64>()) {
        let expected = honest_data_values(seed, n).iter().sum::<u64>() % n as u64;
        let a = ALeadUni::new(n).with_seed(seed).run_honest();
        prop_assert_eq!(a.outcome, Outcome::Elected(expected));
        prop_assert!(a.stats.sent.iter().all(|&s| s == n as u64));
        let b = BasicLead::new(n).with_seed(seed).run_honest();
        prop_assert_eq!(b.outcome, Outcome::Elected(expected));
    }

    /// Honest PhaseSumLead elects the same sum; PhaseAsyncLead succeeds
    /// with 2n messages per processor and a valid leader.
    #[test]
    fn phase_protocols_honest_invariants(n in 4usize..40, seed in any::<u64>()) {
        let expected = honest_data_values(seed, n).iter().sum::<u64>() % n as u64;
        let s = PhaseSumLead::new(n).with_seed(seed).run_honest();
        prop_assert_eq!(s.outcome, Outcome::Elected(expected));
        let p = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(seed ^ 1).run_honest();
        let leader = p.outcome.elected().expect("honest phase run succeeds");
        prop_assert!(leader < n as u64);
        prop_assert!(p.stats.sent.iter().all(|&sent| sent == 2 * n as u64));
    }

    /// The random function is deterministic, in range, and sensitive to
    /// every coordinate.
    #[test]
    fn random_fn_properties(
        key in any::<u64>(),
        range in 2u64..1000,
        data in proptest::collection::vec(any::<u64>(), 1..20),
        flip in 0usize..19,
    ) {
        prop_assume!(flip < data.len());
        let f = RandomFn::new(key, range);
        let y = f.eval(&data, &[]);
        prop_assert!(y < range);
        prop_assert_eq!(y, f.eval(&data, &[]));
        let mut tweaked = data.clone();
        tweaked[flip] = tweaked[flip].wrapping_add(1);
        // Outputs may collide (range is small) but the full 64-bit hash
        // must differ — approximate by checking a wide-range instance.
        let wide = RandomFn::new(key, u64::MAX);
        prop_assert_ne!(wide.eval(&data, &[]), wide.eval(&tweaked, &[]));
    }

    /// elect_from_coins is exactly base-2 reconstruction of the toss bits.
    #[test]
    fn elect_from_coins_is_binary_reconstruction(bits in proptest::collection::vec(0u64..2, 1..10)) {
        let out = elect_from_coins(bits.len(), |i| Outcome::Elected(bits[i]));
        let expect: u64 = bits.iter().enumerate().map(|(i, &b)| b << i).sum();
        prop_assert_eq!(out, Outcome::Elected(expect));
    }

    /// Different seeds give independent-looking elections: over a window
    /// of seeds, at least two distinct leaders appear (n >= 2).
    #[test]
    fn elections_vary_with_seed(n in 4usize..24, base in 0u64..1000) {
        let mut leaders = std::collections::HashSet::new();
        for seed in base..base + 12 {
            leaders.insert(
                ALeadUni::new(n).with_seed(seed).run_honest().outcome.elected().unwrap(),
            );
        }
        prop_assert!(leaders.len() >= 2);
    }

    /// The paper's Section 2 remark, for the richest protocol: on a
    /// unidirectional ring every oblivious schedule yields the same
    /// PhaseAsyncLead outcome — validated against LIFO and seeded-random
    /// schedulers driving the same seeded nodes.
    #[test]
    fn phase_async_is_schedule_independent(n in 4usize..20, seed in any::<u64>(), sched_seed in any::<u64>()) {
        use ring_sim::{LifoScheduler, RandomScheduler, SimBuilder, Topology};
        let p = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(seed ^ 0xabc);
        let reference = p.run_honest().outcome;
        let run_with = |use_lifo: bool| {
            let mut b = SimBuilder::new(Topology::ring(n));
            for id in 0..n {
                b = b.boxed_node(id, p.honest_node(id));
            }
            b = b.wake(0);
            if use_lifo {
                b.scheduler(LifoScheduler::new()).run()
            } else {
                b.scheduler(RandomScheduler::new(sched_seed)).run()
            }
        };
        prop_assert_eq!(run_with(true).outcome, reference);
        prop_assert_eq!(run_with(false).outcome, reference);
    }

    /// SyncLead honest invariants: two rounds, n(n−1) messages, elects
    /// the sum — and a silent processor is always detected.
    #[test]
    fn sync_lead_invariants(n in 2usize..24, seed in any::<u64>(), silent_raw in any::<usize>()) {
        use fle_core::protocols::{SyncLead, SyncWaitAndCancel};
        let expected = honest_data_values(seed, n).iter().sum::<u64>() % n as u64;
        let p = SyncLead::new(n).with_seed(seed);
        let exec = p.run_honest();
        prop_assert_eq!(exec.outcome, Outcome::Elected(expected));
        prop_assert_eq!(exec.messages, (n * (n - 1)) as u64);
        let silent = silent_raw % n;
        let attacked = p.run_with(vec![(silent, Box::new(SyncWaitAndCancel::new(n, 0)))]);
        prop_assert!(attacked.outcome.is_fail());
    }
}
