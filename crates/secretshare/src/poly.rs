//! Polynomials over `GF(2^61 − 1)`: Horner evaluation and Lagrange
//! interpolation, the two primitives Shamir's scheme is built from.

use crate::field::Gf;

/// A polynomial in coefficient form, `coeffs[i]` multiplying `x^i`.
///
/// The zero polynomial is represented by an empty coefficient vector;
/// constructors strip trailing zero coefficients so `degree` is meaningful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    coeffs: Vec<Gf>,
}

impl Poly {
    /// Creates a polynomial from low-to-high coefficients, normalizing away
    /// trailing zeros.
    pub fn new(mut coeffs: Vec<Gf>) -> Self {
        while coeffs.last() == Some(&Gf::ZERO) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: Gf) -> Self {
        Poly::new(vec![c])
    }

    /// Degree of the polynomial; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// The coefficients, low order first (empty for the zero polynomial).
    pub fn coeffs(&self) -> &[Gf] {
        &self.coeffs
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: Gf) -> Gf {
        self.coeffs
            .iter()
            .rev()
            .fold(Gf::ZERO, |acc, &c| acc * x + c)
    }

    /// Interpolates the unique polynomial of degree `< points.len()`
    /// through the given `(x, y)` pairs (Lagrange form, rebuilt into
    /// coefficients so the result can be evaluated anywhere and its degree
    /// inspected).
    ///
    /// # Errors
    ///
    /// Returns [`InterpolationError::DuplicateX`] if two points share an
    /// x-coordinate, and [`InterpolationError::Empty`] for no points.
    pub fn interpolate(points: &[(Gf, Gf)]) -> Result<Poly, InterpolationError> {
        if points.is_empty() {
            return Err(InterpolationError::Empty);
        }
        for (i, (xi, _)) in points.iter().enumerate() {
            if points[i + 1..].iter().any(|(xj, _)| xj == xi) {
                return Err(InterpolationError::DuplicateX(xi.value()));
            }
        }
        let k = points.len();
        let mut acc = vec![Gf::ZERO; k];
        // basis holds the running product Π (x − x_j) for j processed so far.
        for (i, &(xi, yi)) in points.iter().enumerate() {
            // Numerator polynomial Π_{j≠i} (x − x_j), built incrementally.
            let mut num = vec![Gf::ZERO; k];
            num[0] = Gf::ONE;
            let mut deg = 0usize;
            let mut denom = Gf::ONE;
            for (j, &(xj, _)) in points.iter().enumerate() {
                if j == i {
                    continue;
                }
                // Multiply num by (x − x_j).
                for d in (0..=deg).rev() {
                    let c = num[d];
                    num[d + 1] += c;
                    num[d] = c * (-xj);
                }
                deg += 1;
                denom *= xi - xj;
            }
            let scale = yi * denom.inverse().expect("distinct x-coordinates");
            for (a, n) in acc.iter_mut().zip(&num) {
                *a += *n * scale;
            }
        }
        Ok(Poly::new(acc))
    }

    /// Evaluates the interpolating polynomial at `x = 0` directly — the
    /// Shamir reconstruction step — without building the full polynomial.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Poly::interpolate`].
    pub fn interpolate_at_zero(points: &[(Gf, Gf)]) -> Result<Gf, InterpolationError> {
        if points.is_empty() {
            return Err(InterpolationError::Empty);
        }
        for (i, (xi, _)) in points.iter().enumerate() {
            if points[i + 1..].iter().any(|(xj, _)| xj == xi) {
                return Err(InterpolationError::DuplicateX(xi.value()));
            }
        }
        let mut acc = Gf::ZERO;
        for (i, &(xi, yi)) in points.iter().enumerate() {
            let mut num = Gf::ONE;
            let mut denom = Gf::ONE;
            for (j, &(xj, _)) in points.iter().enumerate() {
                if j != i {
                    num *= -xj;
                    denom *= xi - xj;
                }
            }
            acc += yi * num * denom.inverse().expect("distinct x-coordinates");
        }
        Ok(acc)
    }
}

/// Why interpolation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpolationError {
    /// No points were supplied.
    Empty,
    /// Two points share the same x-coordinate (shown).
    DuplicateX(u64),
}

impl std::fmt::Display for InterpolationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpolationError::Empty => write!(f, "no points to interpolate"),
            InterpolationError::DuplicateX(x) => {
                write!(f, "duplicate x-coordinate {x} in interpolation points")
            }
        }
    }
}

impl std::error::Error for InterpolationError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn gf(v: u64) -> Gf {
        Gf::new(v)
    }

    #[test]
    fn zero_polynomial_normalizes() {
        let p = Poly::new(vec![Gf::ZERO, Gf::ZERO]);
        assert_eq!(p.degree(), None);
        assert_eq!(p.eval(gf(5)), Gf::ZERO);
    }

    #[test]
    fn trailing_zeros_are_stripped() {
        let p = Poly::new(vec![gf(3), gf(2), Gf::ZERO]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.coeffs(), &[gf(3), gf(2)]);
    }

    #[test]
    fn horner_matches_naive_evaluation() {
        // p(x) = 3 + 2x + x²
        let p = Poly::new(vec![gf(3), gf(2), gf(1)]);
        for x in 0..10u64 {
            assert_eq!(p.eval(gf(x)).value(), 3 + 2 * x + x * x);
        }
    }

    #[test]
    fn interpolation_recovers_polynomial() {
        let p = Poly::new(vec![gf(7), gf(0), gf(5), gf(11)]);
        let points: Vec<(Gf, Gf)> = (1..=4u64).map(|x| (gf(x), p.eval(gf(x)))).collect();
        let q = Poly::interpolate(&points).expect("distinct points");
        assert_eq!(p, q);
    }

    #[test]
    fn interpolation_through_line() {
        // Two points determine the line y = 2x + 1.
        let points = [(gf(1), gf(3)), (gf(2), gf(5))];
        let q = Poly::interpolate(&points).expect("distinct points");
        assert_eq!(q.coeffs(), &[gf(1), gf(2)]);
    }

    #[test]
    fn interpolate_at_zero_agrees_with_full_interpolation() {
        let p = Poly::new(vec![gf(42), gf(13), gf(9)]);
        let points: Vec<(Gf, Gf)> = (5..8u64).map(|x| (gf(x), p.eval(gf(x)))).collect();
        let direct = Poly::interpolate_at_zero(&points).expect("distinct points");
        let full = Poly::interpolate(&points).expect("distinct points");
        assert_eq!(direct, full.eval(Gf::ZERO));
        assert_eq!(direct.value(), 42);
    }

    #[test]
    fn duplicate_x_is_rejected() {
        let points = [(gf(1), gf(3)), (gf(1), gf(5))];
        assert_eq!(
            Poly::interpolate(&points),
            Err(InterpolationError::DuplicateX(1))
        );
        assert_eq!(
            Poly::interpolate_at_zero(&points),
            Err(InterpolationError::DuplicateX(1))
        );
    }

    #[test]
    fn empty_points_are_rejected() {
        assert_eq!(Poly::interpolate(&[]), Err(InterpolationError::Empty));
        assert_eq!(
            Poly::interpolate_at_zero(&[]),
            Err(InterpolationError::Empty)
        );
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        assert_eq!(
            InterpolationError::DuplicateX(9).to_string(),
            "duplicate x-coordinate 9 in interpolation points"
        );
        assert_eq!(
            InterpolationError::Empty.to_string(),
            "no points to interpolate"
        );
    }
}
