//! `A-LEADfc` — fair leader election for an *asynchronous fully-connected*
//! network via Shamir secret sharing (the paper's Section 1.1 account of
//! Abraham et al.'s `n/2 − 1`-resilient construction).
//!
//! Every processor hides its secret `d_i ∈ [n]` behind a degree-`t`
//! polynomial with `t = ⌈n/2⌉ − 1` and deals one share to each processor.
//! A processor announces `Ready` only once it holds a share from **every**
//! dealer, reveals its shares only once **everyone** is ready, and finally
//! reconstructs all secrets, aborting unless every dealer's `n` shares lie
//! on a single degree-`≤ t` polynomial whose constant term is in `[n]`.
//! The leader is `Σ d_i (mod n)`.
//!
//! Why this resists coalitions of size `k ≤ ⌈n/2⌉ − 1`: before the reveal
//! phase the coalition holds exactly `k < t + 1` shares of every honest
//! secret — information-theoretically independent of the secrets — yet by
//! the time reveals flow, every dealer is committed (its polynomial is
//! determined by the honest majority's shares and any inconsistency
//! aborts). A coalition of `⌈n/2⌉ = t + 1` pools enough shares to
//! reconstruct every honest secret *before* the last adversary deals,
//! which is exactly the [`attack`](crate::attack) module — matching the
//! paper's general `⌈n/2⌉` impossibility bound (Theorem 7.2).

use crate::field::Gf;
use crate::shamir::{consistent, reconstruct, share, Share};
use fle_core::protocols::FleProtocol;
use ring_sim::rng::SplitMix64;
use ring_sim::{Ctx, Execution, Node, NodeId, SimBuilder, Topology};

/// Messages of `A-LEADfc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FcMsg {
    /// Phase 1 — the dealer hands a processor its share.
    Deal {
        /// The dealing processor.
        dealer: NodeId,
        /// The recipient's share of the dealer's secret.
        share: Share,
    },
    /// Phase 2 — sender holds a share from every dealer.
    Ready,
    /// Phase 3 — sender discloses the share it holds of `dealer`'s secret.
    Reveal {
        /// Whose secret the share belongs to.
        dealer: NodeId,
        /// The disclosed share (evaluation point `sender + 1`).
        share: Share,
    },
}

/// The `A-LEADfc` protocol instance: ring-free, fully-connected, seeded.
///
/// # Examples
///
/// ```
/// use fle_core::protocols::FleProtocol;
/// use fle_secretshare::ALeadFc;
///
/// let protocol = ALeadFc::new(8).with_seed(3);
/// let exec = protocol.run_honest();
/// assert!(exec.outcome.elected().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct ALeadFc {
    n: usize,
    seed: u64,
}

impl ALeadFc {
    /// Creates an instance for `n ≥ 3` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (the threshold arithmetic needs at least three
    /// processors).
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "A-LEADfc needs at least 3 processors");
        ALeadFc { n, seed: 0 }
    }

    /// Sets the instance seed that derives all per-node randomness.
    #[must_use]
    pub fn with_seed(self, seed: u64) -> Self {
        ALeadFc { seed, ..self }
    }

    /// The sharing polynomial degree `t = ⌈n/2⌉ − 1`: `t + 1` shares
    /// reconstruct, `t` shares reveal nothing.
    pub fn threshold(&self) -> usize {
        self.n.div_ceil(2) - 1
    }

    /// The instance seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Builds the honest node for processor `id`.
    pub fn honest_node(&self, id: NodeId) -> FcHonest {
        FcHonest {
            core: FcCore::new(self.n, self.threshold()),
            rng: SplitMix64::new(self.seed).derive(id as u64),
        }
    }

    /// Runs the protocol with some processors replaced by deviating nodes.
    ///
    /// # Panics
    ///
    /// Panics if an override id is out of range or duplicated.
    pub fn run_with(&self, mut overrides: Vec<(NodeId, Box<dyn Node<FcMsg>>)>) -> Execution {
        overrides.sort_by_key(|(id, _)| *id);
        let mut builder = SimBuilder::new(Topology::complete(self.n));
        let mut next = overrides.into_iter().peekable();
        for id in 0..self.n {
            if next.peek().is_some_and(|(o, _)| *o == id) {
                let (_, node) = next.next().expect("peeked");
                builder = builder.boxed_node(id, node);
            } else {
                builder = builder.boxed_node(id, Box::new(self.honest_node(id)));
            }
        }
        assert!(
            next.next().is_none(),
            "override id out of range or duplicated"
        );
        // Reveal traffic is Θ(n³) messages; budget generously above it.
        let steps = (self.n as u64).pow(3) * 8 + 10_000;
        builder.wake_all().step_limit(steps).run()
    }

    /// The data values honest processors draw, exposed for tests that
    /// predict the honest sum (attacks never call this).
    pub fn honest_values(&self) -> Vec<u64> {
        (0..self.n)
            .map(|id| {
                SplitMix64::new(self.seed)
                    .derive(id as u64)
                    .next_below(self.n as u64)
            })
            .collect()
    }
}

impl FleProtocol for ALeadFc {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> &'static str {
        "A-LEADfc"
    }

    fn run_honest(&self) -> Execution {
        self.run_with(Vec::new())
    }
}

/// The deal / ready / reveal state machine shared by honest nodes and the
/// attack nodes (which drive it with chosen secrets and extra traffic).
#[derive(Debug, Clone)]
pub(crate) struct FcCore {
    n: usize,
    threshold: usize,
    /// My drawn secret, set by [`FcCore::deal`].
    secret: Option<Gf>,
    /// Share received from each dealer (mine included once dealt).
    dealt_to_me: Vec<Option<Share>>,
    ready: Vec<bool>,
    sent_ready: bool,
    sent_reveal: bool,
    /// `reveals[dealer][holder]` — the share of `dealer`'s secret that
    /// `holder` disclosed (my own filled locally at reveal time).
    reveals: Vec<Vec<Option<Share>>>,
    halted: bool,
}

impl FcCore {
    pub(crate) fn new(n: usize, threshold: usize) -> Self {
        FcCore {
            n,
            threshold,
            secret: None,
            dealt_to_me: vec![None; n],
            ready: vec![false; n],
            sent_ready: false,
            sent_reveal: false,
            reveals: vec![vec![None; n]; n],
            halted: false,
        }
    }

    pub(crate) fn n(&self) -> usize {
        self.n
    }

    pub(crate) fn threshold(&self) -> usize {
        self.threshold
    }

    /// Deals my secret: sends share `j` to processor `j`, keeps my own.
    /// Coefficient randomness comes from `rng`.
    pub(crate) fn deal(&mut self, d: Gf, rng: &mut SplitMix64, ctx: &mut Ctx<'_, FcMsg>) {
        debug_assert!(self.secret.is_none(), "deal called twice");
        self.secret = Some(d);
        let me = ctx.me();
        let shares = share(d, self.threshold, self.n, rng).expect("threshold < n by construction");
        for (j, &s) in shares.iter().enumerate() {
            if j == me {
                self.dealt_to_me[me] = Some(s);
            } else {
                ctx.send_to(
                    j,
                    FcMsg::Deal {
                        dealer: me,
                        share: s,
                    },
                );
            }
        }
        self.advance(ctx);
    }

    /// Feeds one incoming message through the honest state machine.
    pub(crate) fn handle(&mut self, from: NodeId, msg: FcMsg, ctx: &mut Ctx<'_, FcMsg>) {
        if self.halted {
            return;
        }
        match msg {
            FcMsg::Deal { dealer, share } => {
                // Phase-1 shares must come from their dealer, address me,
                // and be fresh — anything else is a detected deviation.
                if dealer != from
                    || share.x != Gf::new(ctx.me() as u64 + 1)
                    || self.dealt_to_me[dealer].is_some()
                {
                    return self.halt(ctx);
                }
                self.dealt_to_me[dealer] = Some(share);
            }
            FcMsg::Ready => {
                if self.ready[from] {
                    return self.halt(ctx);
                }
                self.ready[from] = true;
            }
            FcMsg::Reveal { dealer, share } => {
                // A holder may only reveal its own evaluation point, once.
                if dealer >= self.n
                    || share.x != Gf::new(from as u64 + 1)
                    || self.reveals[dealer][from].is_some()
                {
                    return self.halt(ctx);
                }
                self.reveals[dealer][from] = Some(share);
            }
        }
        self.advance(ctx);
    }

    /// Fires any phase transition enabled by the current state.
    fn advance(&mut self, ctx: &mut Ctx<'_, FcMsg>) {
        if self.halted {
            return;
        }
        let me = ctx.me();
        if !self.sent_ready && self.dealt_to_me.iter().all(Option::is_some) {
            self.sent_ready = true;
            self.ready[me] = true;
            for j in 0..self.n {
                if j != me {
                    ctx.send_to(j, FcMsg::Ready);
                }
            }
        }
        if self.sent_ready && !self.sent_reveal && self.ready.iter().all(|&r| r) {
            self.sent_reveal = true;
            for dealer in 0..self.n {
                let s = self.dealt_to_me[dealer].expect("ready implies all dealt");
                self.reveals[dealer][me] = Some(s);
                for j in 0..self.n {
                    if j != me {
                        ctx.send_to(j, FcMsg::Reveal { dealer, share: s });
                    }
                }
            }
        }
        if self.sent_reveal
            && self
                .reveals
                .iter()
                .all(|per_dealer| per_dealer.iter().all(Option::is_some))
        {
            self.finish(ctx);
        }
    }

    /// Reconstructs every secret, runs all abort checks, and terminates.
    fn finish(&mut self, ctx: &mut Ctx<'_, FcMsg>) {
        let me = ctx.me();
        let mut sum = 0u64;
        for dealer in 0..self.n {
            let shares: Vec<Share> = self.reveals[dealer]
                .iter()
                .map(|s| s.expect("finish implies complete"))
                .collect();
            let ok = consistent(&shares, self.threshold).unwrap_or(false);
            if !ok {
                return self.halt(ctx);
            }
            let d = reconstruct(&shares, self.threshold).expect("n > threshold shares");
            // Secrets must be in [n]; my own must reconstruct to what I dealt.
            if d.value() >= self.n as u64 || (dealer == me && Some(d) != self.secret) {
                return self.halt(ctx);
            }
            sum = (sum + d.value()) % self.n as u64;
        }
        self.halted = true;
        ctx.terminate(Some(sum));
    }

    fn halt(&mut self, ctx: &mut Ctx<'_, FcMsg>) {
        self.halted = true;
        ctx.abort();
    }
}

/// The honest `A-LEADfc` processor: draws `d ∈ [n]` on wake-up, deals it,
/// and follows the deal / ready / reveal machine.
#[derive(Debug, Clone)]
pub struct FcHonest {
    core: FcCore,
    rng: SplitMix64,
}

impl Node<FcMsg> for FcHonest {
    fn on_wake(&mut self, ctx: &mut Ctx<'_, FcMsg>) {
        let d = Gf::new(self.rng.next_below(self.core.n as u64));
        self.core.deal(d, &mut self.rng, ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: FcMsg, ctx: &mut Ctx<'_, FcMsg>) {
        self.core.handle(from, msg, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_sim::Outcome;

    #[test]
    fn honest_run_elects_the_secret_sum() {
        for seed in 0..8 {
            let p = ALeadFc::new(7).with_seed(seed);
            let expect = p.honest_values().iter().sum::<u64>() % 7;
            assert_eq!(
                p.run_honest().outcome,
                Outcome::Elected(expect),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn honest_run_works_across_sizes() {
        for n in [3, 4, 5, 8, 12] {
            let p = ALeadFc::new(n).with_seed(1);
            assert!(p.run_honest().outcome.elected().is_some(), "n = {n}");
        }
    }

    #[test]
    fn threshold_is_majority_minus_one() {
        assert_eq!(ALeadFc::new(8).threshold(), 3);
        assert_eq!(ALeadFc::new(9).threshold(), 4);
        assert_eq!(ALeadFc::new(3).threshold(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_rings_are_rejected() {
        let _ = ALeadFc::new(2);
    }

    #[test]
    fn message_counts_are_cubic_in_n() {
        let p = ALeadFc::new(6).with_seed(0);
        let exec = p.run_honest();
        let total: u64 = exec.stats.total_sent();
        // deal: n(n−1), ready: n(n−1), reveal: n²(n−1).
        let n = 6u64;
        assert_eq!(total, n * (n - 1) + n * (n - 1) + n * n * (n - 1));
    }

    #[test]
    fn inconsistent_dealing_aborts_the_run() {
        // A dealer whose shares do not lie on one degree-≤t polynomial must
        // cause a global failure, not a biased election.
        struct BadDealer {
            core: FcCore,
            rng: SplitMix64,
        }
        impl Node<FcMsg> for BadDealer {
            fn on_wake(&mut self, ctx: &mut Ctx<'_, FcMsg>) {
                let n = self.core.n;
                let t = self.core.threshold;
                let me = ctx.me();
                let mut shares = share(Gf::new(1), t, n, &mut self.rng).expect("threshold < n");
                // Corrupt the share handed to the last processor.
                shares[n - 1].y += Gf::ONE;
                self.core.secret = Some(Gf::new(1));
                for (j, &s) in shares.iter().enumerate() {
                    if j == me {
                        self.core.dealt_to_me[me] = Some(s);
                    } else {
                        ctx.send_to(
                            j,
                            FcMsg::Deal {
                                dealer: me,
                                share: s,
                            },
                        );
                    }
                }
            }
            fn on_message(&mut self, from: NodeId, msg: FcMsg, ctx: &mut Ctx<'_, FcMsg>) {
                self.core.handle(from, msg, ctx);
            }
        }
        let p = ALeadFc::new(5).with_seed(3);
        let bad = BadDealer {
            core: FcCore::new(5, p.threshold()),
            rng: SplitMix64::new(77),
        };
        let exec = p.run_with(vec![(2, Box::new(bad))]);
        assert!(exec.outcome.is_fail(), "inconsistent dealing must abort");
    }

    #[test]
    fn out_of_range_secret_aborts() {
        struct BigSecret {
            core: FcCore,
            rng: SplitMix64,
        }
        impl Node<FcMsg> for BigSecret {
            fn on_wake(&mut self, ctx: &mut Ctx<'_, FcMsg>) {
                // Deals a perfectly consistent polynomial whose secret is
                // outside [n] — caught by the range check at finish.
                let d = Gf::new(self.core.n as u64 + 5);
                self.core.deal(d, &mut self.rng, ctx);
            }
            fn on_message(&mut self, from: NodeId, msg: FcMsg, ctx: &mut Ctx<'_, FcMsg>) {
                self.core.handle(from, msg, ctx);
            }
        }
        let p = ALeadFc::new(5).with_seed(3);
        let bad = BigSecret {
            core: FcCore::new(5, p.threshold()),
            rng: SplitMix64::new(78),
        };
        let exec = p.run_with(vec![(1, Box::new(bad))]);
        assert!(exec.outcome.is_fail());
    }

    #[test]
    fn forged_dealer_field_aborts() {
        // An adversary claiming to deal on behalf of processor 0.
        struct Forger {
            inner: FcHonest,
            forged: bool,
        }
        impl Node<FcMsg> for Forger {
            fn on_wake(&mut self, ctx: &mut Ctx<'_, FcMsg>) {
                self.inner.on_wake(ctx);
                if !self.forged {
                    self.forged = true;
                    ctx.send_to(
                        1,
                        FcMsg::Deal {
                            dealer: 0,
                            share: Share {
                                x: Gf::new(2),
                                y: Gf::new(9),
                            },
                        },
                    );
                }
            }
            fn on_message(&mut self, from: NodeId, msg: FcMsg, ctx: &mut Ctx<'_, FcMsg>) {
                self.inner.on_message(from, msg, ctx);
            }
        }
        let p = ALeadFc::new(5).with_seed(3);
        let bad = Forger {
            inner: p.honest_node(3),
            forged: false,
        };
        let exec = p.run_with(vec![(3, Box::new(bad))]);
        assert!(exec.outcome.is_fail());
    }
}
