//! # fle-secretshare — Shamir secret sharing and the fully-connected FLE
//!
//! The paper's Section 1.1 recalls that on an *asynchronous fully-connected*
//! network, Abraham et al. obtain an optimally resilient fair leader
//! election by "applying Shamir's secret sharing scheme in a
//! straightforward manner": resilience `⌈n/2⌉ − 1`, matching the general
//! `⌈n/2⌉` impossibility (Theorem 7.2 / Claim F.5). This crate builds that
//! whole stack from scratch:
//!
//! * [`Gf`] — the prime field `GF(2^61 − 1)` ([`field`]).
//! * [`Poly`] — Horner evaluation and Lagrange interpolation ([`poly`]).
//! * [`share`] / [`reconstruct`] / [`consistent`] — `(t, n)` threshold
//!   sharing ([`shamir`]).
//! * [`ALeadFc`] — the deal / ready / reveal election protocol
//!   ([`protocol`]), run on the `ring-sim` engine over
//!   [`Topology::complete`](ring_sim::Topology::complete).
//! * [`run_fc_attack`] — the share-pooling rushing coalition showing the
//!   bound is tight: `⌈n/2⌉` adversaries force any outcome, `⌈n/2⌉ − 1`
//!   cannot ([`attack`]).
//!
//! ## Example
//!
//! ```
//! use fle_core::protocols::FleProtocol;
//! use fle_secretshare::{run_fc_attack, ALeadFc};
//!
//! let protocol = ALeadFc::new(8).with_seed(1);
//! // Honest runs elect the secret sum.
//! assert!(protocol.run_honest().outcome.elected().is_some());
//! // A majority coalition forces its target.
//! let exec = run_fc_attack(&protocol, &[0, 1, 2, 3], 6);
//! assert_eq!(exec.outcome.elected(), Some(6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod field;
pub mod poly;
pub mod protocol;
pub mod shamir;

pub use attack::{fc_pooling_deviation, run_fc_attack};
pub use field::{Gf, MODULUS};
pub use poly::{InterpolationError, Poly};
pub use protocol::{ALeadFc, FcHonest, FcMsg};
pub use shamir::{consistent, reconstruct, share, ShamirError, Share};
