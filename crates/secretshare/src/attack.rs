//! The share-pooling rushing attack on `A-LEADfc`, demonstrating that its
//! `⌈n/2⌉ − 1` resilience is tight.
//!
//! Every adversary except a designated *leader* deals the secret `0`
//! immediately and forwards each honest phase-1 share it receives to the
//! leader over the coalition's direct links (a fully-connected network
//! gives the coalition free private channels — the structural weakness the
//! paper's ring protocols do not have). The leader postpones its own deal.
//! Once every honest dealer's secret is covered by `k` pooled shares, the
//! leader reconstructs them all — possible exactly when
//! `k ≥ t + 1 = ⌈n/2⌉` — picks its own secret to steer the total to the
//! target, deals it, and plays honestly ever after. Every validation
//! passes and the election lands on the target with certainty.
//!
//! Below the threshold the pooled shares are information-theoretically
//! useless; the leader falls back to an honest deal and the outcome stays
//! uniform, which is what the resilience half of the experiment measures.

use crate::field::Gf;
use crate::protocol::{ALeadFc, FcMsg};
use crate::shamir::{reconstruct, Share};
use fle_core::protocols::FleProtocol;
use ring_sim::rng::SplitMix64;
use ring_sim::{Ctx, Execution, Node, NodeId};

use crate::protocol::FcCore;

/// Builds the coalition's node overrides for [`run_fc_attack`].
///
/// `coalition` must be non-empty, sorted or not, with distinct in-range
/// ids; the first entry becomes the pooling leader.
///
/// # Panics
///
/// Panics if the coalition is empty or contains out-of-range ids.
pub fn fc_pooling_deviation(
    protocol: &ALeadFc,
    coalition: &[NodeId],
    target: u64,
) -> Vec<(NodeId, Box<dyn Node<FcMsg>>)> {
    let n = protocol.n();
    assert!(!coalition.is_empty(), "coalition must be non-empty");
    assert!(
        coalition.iter().all(|&a| a < n),
        "coalition id out of range"
    );
    let t = protocol.threshold();
    let leader = coalition[0];
    let members: Vec<NodeId> = coalition.to_vec();
    let mut nodes: Vec<(NodeId, Box<dyn Node<FcMsg>>)> = Vec::with_capacity(coalition.len());
    nodes.push((
        leader,
        Box::new(FcPoolLeader {
            core: FcCore::new(n, t),
            rng: SplitMix64::new(protocol.seed())
                .derive(leader as u64)
                .derive(0xA77),
            members: members.clone(),
            target,
            pooled: vec![Vec::new(); n],
            dealt: false,
            buffered: Vec::new(),
        }),
    ));
    for &a in &coalition[1..] {
        nodes.push((
            a,
            Box::new(FcPoolForwarder {
                core: FcCore::new(n, t),
                rng: SplitMix64::new(protocol.seed())
                    .derive(a as u64)
                    .derive(0xA77),
                leader,
                members: members.clone(),
            }),
        ));
    }
    nodes
}

/// Runs the pooling attack and returns the execution.
pub fn run_fc_attack(protocol: &ALeadFc, coalition: &[NodeId], target: u64) -> Execution {
    protocol.run_with(fc_pooling_deviation(protocol, coalition, target))
}

/// A non-leader adversary: deals `0` at wake-up, forwards every honest
/// phase-1 share to the leader, and otherwise follows the protocol (so no
/// honest validation can fire).
struct FcPoolForwarder {
    core: FcCore,
    rng: SplitMix64,
    leader: NodeId,
    members: Vec<NodeId>,
}

impl Node<FcMsg> for FcPoolForwarder {
    fn on_wake(&mut self, ctx: &mut Ctx<'_, FcMsg>) {
        self.core.deal(Gf::ZERO, &mut self.rng, ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: FcMsg, ctx: &mut Ctx<'_, FcMsg>) {
        if let FcMsg::Deal { dealer, .. } = msg {
            if dealer == from && !self.members.contains(&dealer) {
                // Forward the honest share to the pooling leader. The
                // leader recognises forwards by `from ≠ dealer`.
                ctx.send_to(self.leader, msg);
            }
        }
        self.core.handle(from, msg, ctx);
    }
}

/// The pooling leader: collects direct and forwarded honest shares, and
/// deals only once it either reconstructed every honest secret (steering
/// the sum to `target`) or learned it never will (honest fallback).
struct FcPoolLeader {
    core: FcCore,
    rng: SplitMix64,
    members: Vec<NodeId>,
    target: u64,
    /// Pooled shares per honest dealer, deduplicated by evaluation point.
    pooled: Vec<Vec<Share>>,
    dealt: bool,
    /// Messages deferred until after our (late) deal, replayed in order so
    /// the inner state machine still sees a legal history.
    buffered: Vec<(NodeId, FcMsg)>,
}

impl FcPoolLeader {
    /// `k` shares of every honest dealer are in the pool once each honest
    /// dealer's entry reaches the coalition size.
    fn pool_complete(&self, n: usize) -> bool {
        (0..n)
            .filter(|d| !self.members.contains(d))
            .all(|d| self.pooled[d].len() >= self.members.len())
    }

    fn try_deal(&mut self, ctx: &mut Ctx<'_, FcMsg>) {
        if self.dealt {
            return;
        }
        let n = self.core.n();
        let t = self.core.threshold();
        if !self.pool_complete(n) {
            return;
        }
        self.dealt = true;
        let k = self.members.len();
        let d = if k > t {
            // Reconstruct every honest secret from any t+1 pooled shares,
            // then cancel the running sum against the target. Non-leader
            // coalition members dealt 0, so they drop out of the sum.
            let mut honest_sum = 0u64;
            for dealer in (0..n).filter(|d| !self.members.contains(d)) {
                let d = reconstruct(&self.pooled[dealer], t).expect("k >= t + 1 pooled shares");
                honest_sum = (honest_sum + d.value()) % n as u64;
            }
            Gf::new((self.target + n as u64 - honest_sum) % n as u64)
        } else {
            // Below the threshold the pool is useless: fall back to an
            // honest uniform draw so the protocol still succeeds.
            Gf::new(self.rng.next_below(n as u64))
        };
        self.core.deal(d, &mut self.rng, ctx);
        for (from, msg) in std::mem::take(&mut self.buffered) {
            self.core.handle(from, msg, ctx);
        }
    }
}

impl Node<FcMsg> for FcPoolLeader {
    fn on_wake(&mut self, _ctx: &mut Ctx<'_, FcMsg>) {
        // Deliberately idle: the deal waits for the pool.
    }

    fn on_message(&mut self, from: NodeId, msg: FcMsg, ctx: &mut Ctx<'_, FcMsg>) {
        match msg {
            FcMsg::Deal { dealer, share } if !self.members.contains(&dealer) => {
                // Direct (from == dealer) or forwarded (from in coalition)
                // honest share; pool it, deduplicating by x.
                if self.pooled[dealer].iter().all(|s| s.x != share.x) {
                    self.pooled[dealer].push(share);
                }
                if dealer == from {
                    // Also a legal protocol message for our own machine.
                    if self.dealt {
                        self.core.handle(from, msg, ctx);
                    } else {
                        self.buffered.push((from, msg));
                    }
                }
            }
            _ => {
                if self.dealt {
                    self.core.handle(from, msg, ctx);
                } else {
                    self.buffered.push((from, msg));
                }
            }
        }
        self.try_deal(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_sim::Outcome;

    #[test]
    fn majority_coalition_controls_the_outcome() {
        // n = 8, t = 3: a coalition of ⌈n/2⌉ = 4 forces any target.
        let p = ALeadFc::new(8).with_seed(11);
        for target in [0u64, 3, 7] {
            let exec = run_fc_attack(&p, &[0, 2, 4, 6], target);
            assert_eq!(exec.outcome, Outcome::Elected(target), "target {target}");
        }
    }

    #[test]
    fn coalition_placement_is_irrelevant_in_complete_graphs() {
        let p = ALeadFc::new(9).with_seed(5);
        // ⌈9/2⌉ = 5 adversaries, arbitrary ids.
        let exec = run_fc_attack(&p, &[8, 1, 3, 2, 7], 4);
        assert_eq!(exec.outcome, Outcome::Elected(4));
    }

    #[test]
    fn below_threshold_the_attack_degrades_to_uniform() {
        // k = 3 < ⌈8/2⌉ = 4: the pool never reconstructs; runs complete
        // with a valid (not forced) outcome.
        let mut hits = 0u64;
        let trials = 48u64;
        for seed in 0..trials {
            let p = ALeadFc::new(8).with_seed(seed);
            let exec = run_fc_attack(&p, &[0, 2, 4], 5);
            let w = exec.outcome.elected().expect("fallback still succeeds");
            if w == 5 {
                hits += 1;
            }
        }
        // Uniform would hit ~1/8 of trials; "always" would be all 48.
        assert!(
            hits < trials / 2,
            "sub-threshold coalition forced {hits}/{trials}"
        );
    }

    #[test]
    fn single_adversary_cannot_bias() {
        let p = ALeadFc::new(6).with_seed(9);
        let exec = run_fc_attack(&p, &[3], 2);
        assert!(exec.outcome.elected().is_some());
    }
}
