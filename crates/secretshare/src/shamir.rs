//! Shamir's `(t, n)` threshold secret sharing over `GF(2^61 − 1)`.
//!
//! A dealer hides a secret as the constant term of a uniformly random
//! polynomial of degree `t` and hands share `j` — the evaluation at
//! `x = j + 1` — to processor `j`. Any `t + 1` shares reconstruct the
//! secret by interpolation; any `t` shares are jointly uniform and reveal
//! nothing. This is the commitment primitive behind the asynchronous
//! fully-connected fair leader election of the paper's Section 1.1
//! (Abraham et al.'s `n/2 − 1`-resilient protocol).

use crate::field::Gf;
use crate::poly::{InterpolationError, Poly};
use ring_sim::rng::SplitMix64;

/// One Shamir share: the dealer's polynomial evaluated at `x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Share {
    /// Evaluation point (never zero; share for processor `j` uses `j + 1`).
    pub x: Gf,
    /// Evaluation value.
    pub y: Gf,
}

/// Why sharing or reconstruction failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShamirError {
    /// `threshold + 1 > n`: the secret could never be reconstructed.
    ThresholdTooLarge {
        /// Requested polynomial degree.
        threshold: usize,
        /// Number of shares requested.
        n: usize,
    },
    /// Fewer than `threshold + 1` shares were supplied.
    NotEnoughShares {
        /// Shares supplied.
        got: usize,
        /// Shares required.
        need: usize,
    },
    /// Two shares claim the same evaluation point.
    DuplicateShare(u64),
}

impl std::fmt::Display for ShamirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShamirError::ThresholdTooLarge { threshold, n } => {
                write!(
                    f,
                    "threshold {threshold} needs {} shares but only {n} exist",
                    threshold + 1
                )
            }
            ShamirError::NotEnoughShares { got, need } => {
                write!(f, "reconstruction needs {need} shares, got {got}")
            }
            ShamirError::DuplicateShare(x) => write!(f, "duplicate share at x = {x}"),
        }
    }
}

impl std::error::Error for ShamirError {}

impl From<InterpolationError> for ShamirError {
    fn from(err: InterpolationError) -> Self {
        match err {
            InterpolationError::Empty => ShamirError::NotEnoughShares { got: 0, need: 1 },
            InterpolationError::DuplicateX(x) => ShamirError::DuplicateShare(x),
        }
    }
}

/// Splits `secret` into `n` shares such that any `threshold + 1` of them
/// reconstruct it and any `threshold` of them are information-theoretically
/// independent of it. Share `j` (for processor `j`) evaluates the hidden
/// polynomial at `x = j + 1`.
///
/// # Errors
///
/// Returns [`ShamirError::ThresholdTooLarge`] when `threshold + 1 > n`.
///
/// # Examples
///
/// ```
/// use fle_secretshare::{share, reconstruct, Gf};
/// use ring_sim::rng::SplitMix64;
///
/// let mut rng = SplitMix64::new(7);
/// let shares = share(Gf::new(42), 2, 5, &mut rng)?;
/// let secret = reconstruct(&shares[1..4], 2)?;
/// assert_eq!(secret.value(), 42);
/// # Ok::<(), fle_secretshare::ShamirError>(())
/// ```
pub fn share(
    secret: Gf,
    threshold: usize,
    n: usize,
    rng: &mut SplitMix64,
) -> Result<Vec<Share>, ShamirError> {
    if threshold + 1 > n {
        return Err(ShamirError::ThresholdTooLarge { threshold, n });
    }
    let mut coeffs = Vec::with_capacity(threshold + 1);
    coeffs.push(secret);
    for _ in 0..threshold {
        coeffs.push(Gf::new(rng.next_below(crate::field::MODULUS)));
    }
    let poly = Poly::new(coeffs);
    Ok((0..n)
        .map(|j| {
            let x = Gf::new(j as u64 + 1);
            Share { x, y: poly.eval(x) }
        })
        .collect())
}

/// Reconstructs the secret from at least `threshold + 1` shares.
///
/// Only the first `threshold + 1` shares are used for interpolation; pass
/// exactly that many when checking consistency separately (see
/// [`consistent`]).
///
/// # Errors
///
/// [`ShamirError::NotEnoughShares`] when too few shares are supplied and
/// [`ShamirError::DuplicateShare`] when two shares collide on `x`.
pub fn reconstruct(shares: &[Share], threshold: usize) -> Result<Gf, ShamirError> {
    if shares.len() < threshold + 1 {
        return Err(ShamirError::NotEnoughShares {
            got: shares.len(),
            need: threshold + 1,
        });
    }
    let points: Vec<(Gf, Gf)> = shares[..threshold + 1].iter().map(|s| (s.x, s.y)).collect();
    Ok(Poly::interpolate_at_zero(&points)?)
}

/// Checks that *all* shares lie on a single polynomial of degree
/// `≤ threshold` — the abort test honest processors run during the reveal
/// phase: a dealer that handed out inconsistent shares is caught here.
///
/// # Errors
///
/// Propagates [`ShamirError::NotEnoughShares`] / [`ShamirError::DuplicateShare`].
pub fn consistent(shares: &[Share], threshold: usize) -> Result<bool, ShamirError> {
    if shares.len() < threshold + 1 {
        return Err(ShamirError::NotEnoughShares {
            got: shares.len(),
            need: threshold + 1,
        });
    }
    let base: Vec<(Gf, Gf)> = shares[..threshold + 1].iter().map(|s| (s.x, s.y)).collect();
    let poly = Poly::interpolate(&base)?;
    for s in shares {
        if poly.eval(s.x) != s.y {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_threshold_plus_one_shares_reconstruct() {
        let mut rng = SplitMix64::new(99);
        let secret = Gf::new(123_456);
        let shares = share(secret, 3, 8, &mut rng).expect("valid params");
        assert_eq!(shares.len(), 8);
        // Every 4-subset of a few sampled ones reconstructs.
        for window in shares.windows(4) {
            assert_eq!(reconstruct(window, 3).expect("enough shares"), secret);
        }
        // Non-contiguous subset too.
        let subset = [shares[0], shares[3], shares[5], shares[7]];
        assert_eq!(reconstruct(&subset, 3).expect("enough"), secret);
    }

    #[test]
    fn threshold_shares_do_not_determine_secret() {
        // With t shares, every candidate secret is consistent with some
        // degree-t polynomial — verify for two different secrets that the
        // same t shares could have come from either.
        let mut rng = SplitMix64::new(7);
        let shares = share(Gf::new(5), 2, 5, &mut rng).expect("valid");
        let partial = &shares[..2];
        // Interpolating partial + a forged zero-point for ANY secret works:
        for candidate in [0u64, 1, 999] {
            let mut pts: Vec<(Gf, Gf)> = partial.iter().map(|s| (s.x, s.y)).collect();
            pts.push((Gf::ZERO, Gf::new(candidate)));
            let poly = Poly::interpolate(&pts).expect("distinct x");
            assert!(poly.degree().unwrap_or(0) <= 2);
            assert_eq!(poly.eval(Gf::ZERO).value(), candidate);
        }
    }

    #[test]
    fn too_few_shares_is_an_error() {
        let mut rng = SplitMix64::new(1);
        let shares = share(Gf::new(9), 4, 6, &mut rng).expect("valid");
        let err = reconstruct(&shares[..4], 4).unwrap_err();
        assert_eq!(err, ShamirError::NotEnoughShares { got: 4, need: 5 });
    }

    #[test]
    fn threshold_larger_than_n_is_an_error() {
        let mut rng = SplitMix64::new(1);
        let err = share(Gf::new(9), 6, 6, &mut rng).unwrap_err();
        assert_eq!(err, ShamirError::ThresholdTooLarge { threshold: 6, n: 6 });
    }

    #[test]
    fn duplicate_shares_are_detected() {
        let mut rng = SplitMix64::new(1);
        let shares = share(Gf::new(9), 1, 4, &mut rng).expect("valid");
        let dup = [shares[0], shares[0]];
        assert_eq!(
            reconstruct(&dup, 1).unwrap_err(),
            ShamirError::DuplicateShare(1)
        );
    }

    #[test]
    fn consistency_accepts_honest_dealer() {
        let mut rng = SplitMix64::new(5);
        let shares = share(Gf::new(77), 2, 7, &mut rng).expect("valid");
        assert!(consistent(&shares, 2).expect("enough shares"));
    }

    #[test]
    fn consistency_rejects_tampered_share() {
        let mut rng = SplitMix64::new(5);
        let mut shares = share(Gf::new(77), 2, 7, &mut rng).expect("valid");
        shares[6].y += Gf::ONE;
        assert!(!consistent(&shares, 2).expect("enough shares"));
    }

    #[test]
    fn share_points_skip_zero() {
        let mut rng = SplitMix64::new(5);
        let shares = share(Gf::new(1), 1, 3, &mut rng).expect("valid");
        assert!(shares.iter().all(|s| s.x != Gf::ZERO));
    }

    #[test]
    fn error_display_is_meaningful() {
        assert_eq!(
            ShamirError::NotEnoughShares { got: 1, need: 3 }.to_string(),
            "reconstruction needs 3 shares, got 1"
        );
        assert_eq!(
            ShamirError::ThresholdTooLarge { threshold: 5, n: 4 }.to_string(),
            "threshold 5 needs 6 shares but only 4 exist"
        );
    }
}
