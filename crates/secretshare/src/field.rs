//! The prime field `GF(p)` with `p = 2^61 − 1` (a Mersenne prime).
//!
//! Shamir's scheme needs a field large enough that share values carry no
//! usable structure and that `n` distinct evaluation points always exist.
//! `2^61 − 1` keeps every product inside `u128` and admits a fast Mersenne
//! reduction, so no external big-integer dependency is needed.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// The field modulus, `2^61 − 1 = 2 305 843 009 213 693 951`.
pub const MODULUS: u64 = (1 << 61) - 1;

/// An element of `GF(2^61 − 1)`, always stored reduced (`0 ≤ value < p`).
///
/// # Examples
///
/// ```
/// use fle_secretshare::Gf;
///
/// let a = Gf::new(7);
/// let b = Gf::new(11);
/// assert_eq!((a + b).value(), 18);
/// assert_eq!((a * a.inverse().unwrap()).value(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Gf(u64);

impl Gf {
    /// The additive identity.
    pub const ZERO: Gf = Gf(0);
    /// The multiplicative identity.
    pub const ONE: Gf = Gf(1);

    /// Creates a field element, reducing `value` modulo `p`.
    pub fn new(value: u64) -> Self {
        Gf(reduce64(value))
    }

    /// The canonical representative in `[0, p)`.
    pub fn value(self) -> u64 {
        self.0
    }

    /// `self^exp` by square-and-multiply.
    pub fn pow(self, mut exp: u64) -> Self {
        let mut base = self;
        let mut acc = Gf::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }

    /// The multiplicative inverse, or `None` for zero.
    ///
    /// Uses Fermat's little theorem: `a^{p−2} = a^{−1}` in `GF(p)`.
    pub fn inverse(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(self.pow(MODULUS - 2))
        }
    }
}

impl From<u64> for Gf {
    fn from(value: u64) -> Self {
        Gf::new(value)
    }
}

impl fmt::Display for Gf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Reduces a `u64` modulo the Mersenne prime `2^61 − 1`.
fn reduce64(x: u64) -> u64 {
    // x = hi·2^61 + lo ≡ hi + lo (mod 2^61 − 1); one conditional subtract
    // finishes because hi ≤ 7 and lo < 2^61.
    let folded = (x >> 61) + (x & MODULUS);
    if folded >= MODULUS {
        folded - MODULUS
    } else {
        folded
    }
}

/// Reduces a `u128` (product of two reduced elements) modulo `2^61 − 1`.
fn reduce128(x: u128) -> u64 {
    let lo = (x & MODULUS as u128) as u64;
    let hi = (x >> 61) as u64; // < 2^61 for products of reduced inputs
    reduce64(reduce64(hi).wrapping_add(lo))
}

impl Add for Gf {
    type Output = Gf;
    fn add(self, rhs: Gf) -> Gf {
        // Both operands < 2^61, so the sum fits in u64 without overflow.
        Gf(reduce64(self.0 + rhs.0))
    }
}

impl Sub for Gf {
    type Output = Gf;
    fn sub(self, rhs: Gf) -> Gf {
        Gf(reduce64(self.0 + MODULUS - rhs.0))
    }
}

impl Mul for Gf {
    type Output = Gf;
    fn mul(self, rhs: Gf) -> Gf {
        Gf(reduce128(self.0 as u128 * rhs.0 as u128))
    }
}

impl Div for Gf {
    type Output = Gf;
    /// # Panics
    ///
    /// Panics on division by zero.
    // Field division IS multiplication by the inverse.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Gf) -> Gf {
        self * rhs.inverse().expect("division by zero in GF(p)")
    }
}

impl Neg for Gf {
    type Output = Gf;
    fn neg(self) -> Gf {
        Gf::ZERO - self
    }
}

impl AddAssign for Gf {
    fn add_assign(&mut self, rhs: Gf) {
        *self = *self + rhs;
    }
}

impl SubAssign for Gf {
    fn sub_assign(&mut self, rhs: Gf) {
        *self = *self - rhs;
    }
}

impl MulAssign for Gf {
    fn mul_assign(&mut self, rhs: Gf) {
        *self = *self * rhs;
    }
}

impl std::iter::Sum for Gf {
    fn sum<I: Iterator<Item = Gf>>(iter: I) -> Gf {
        iter.fold(Gf::ZERO, |a, b| a + b)
    }
}

impl std::iter::Product for Gf {
    fn product<I: Iterator<Item = Gf>>(iter: I) -> Gf {
        iter.fold(Gf::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_reduces_modulo_p() {
        assert_eq!(Gf::new(MODULUS).value(), 0);
        assert_eq!(Gf::new(MODULUS + 5).value(), 5);
        assert_eq!(Gf::new(u64::MAX).value(), u64::MAX % MODULUS);
    }

    #[test]
    fn addition_wraps() {
        let a = Gf::new(MODULUS - 1);
        assert_eq!((a + Gf::ONE).value(), 0);
        assert_eq!((a + Gf::new(2)).value(), 1);
    }

    #[test]
    fn subtraction_wraps() {
        assert_eq!((Gf::ZERO - Gf::ONE).value(), MODULUS - 1);
        assert_eq!((Gf::new(5) - Gf::new(3)).value(), 2);
    }

    #[test]
    fn multiplication_matches_u128_reference() {
        let a = Gf::new(0x1234_5678_9abc_def0);
        let b = Gf::new(0x0fed_cba9_8765_4321);
        let expect = ((a.value() as u128 * b.value() as u128) % MODULUS as u128) as u64;
        assert_eq!((a * b).value(), expect);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = Gf::new(12345);
        let mut acc = Gf::ONE;
        for e in 0..20u64 {
            assert_eq!(a.pow(e), acc);
            acc *= a;
        }
    }

    #[test]
    fn fermat_inverse() {
        for v in [1u64, 2, 3, 17, MODULUS - 1, 0xdead_beef] {
            let a = Gf::new(v);
            let inv = a.inverse().expect("nonzero");
            assert_eq!(a * inv, Gf::ONE, "value {v}");
        }
        assert_eq!(Gf::ZERO.inverse(), None);
    }

    #[test]
    fn division_is_multiplication_by_inverse() {
        let a = Gf::new(999);
        let b = Gf::new(7);
        assert_eq!((a / b) * b, a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf::ONE / Gf::ZERO;
    }

    #[test]
    fn negation_is_additive_inverse() {
        let a = Gf::new(42);
        assert_eq!(a + (-a), Gf::ZERO);
        assert_eq!(-Gf::ZERO, Gf::ZERO);
    }

    #[test]
    fn sum_and_product_fold() {
        let xs = [Gf::new(1), Gf::new(2), Gf::new(3)];
        assert_eq!(xs.iter().copied().sum::<Gf>().value(), 6);
        assert_eq!(xs.iter().copied().product::<Gf>().value(), 6);
    }

    #[test]
    fn display_shows_canonical_value() {
        assert_eq!(Gf::new(MODULUS + 3).to_string(), "3");
    }
}
