//! Property-based tests for the secret-sharing stack: field axioms,
//! interpolation round-trips, Shamir threshold semantics, and the
//! protocol-level resilience crossover.

use fle_core::protocols::FleProtocol;
use fle_secretshare::{consistent, reconstruct, run_fc_attack, share, ALeadFc, Gf, Poly, MODULUS};
use proptest::prelude::*;
use ring_sim::rng::SplitMix64;

fn gf() -> impl Strategy<Value = Gf> {
    any::<u64>().prop_map(Gf::new)
}

proptest! {
    #[test]
    fn field_addition_is_commutative_and_associative(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn field_multiplication_is_commutative_and_associative(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn field_distributes(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn field_identities_and_inverses(a in gf()) {
        prop_assert_eq!(a + Gf::ZERO, a);
        prop_assert_eq!(a * Gf::ONE, a);
        prop_assert_eq!(a - a, Gf::ZERO);
        if a != Gf::ZERO {
            prop_assert_eq!(a * a.inverse().unwrap(), Gf::ONE);
        }
    }

    #[test]
    fn field_values_stay_reduced(a in gf(), b in gf()) {
        prop_assert!((a + b).value() < MODULUS);
        prop_assert!((a * b).value() < MODULUS);
        prop_assert!((a - b).value() < MODULUS);
    }

    #[test]
    fn interpolation_round_trips(coeffs in prop::collection::vec(gf(), 1..7)) {
        let poly = Poly::new(coeffs);
        let k = poly.coeffs().len().max(1);
        let points: Vec<(Gf, Gf)> =
            (1..=k as u64).map(|x| (Gf::new(x), poly.eval(Gf::new(x)))).collect();
        let back = Poly::interpolate(&points).unwrap();
        prop_assert_eq!(back, poly);
    }

    #[test]
    fn shamir_round_trips_for_every_threshold(
        secret in any::<u64>(),
        t in 0usize..6,
        extra in 1usize..5,
        seed in any::<u64>(),
    ) {
        let n = t + extra;
        let mut rng = SplitMix64::new(seed);
        let shares = share(Gf::new(secret), t, n, &mut rng).unwrap();
        prop_assert_eq!(shares.len(), n);
        prop_assert!(consistent(&shares, t).unwrap());
        // Reconstruct from the first t+1 and from the last t+1.
        prop_assert_eq!(reconstruct(&shares[..t + 1], t).unwrap(), Gf::new(secret));
        prop_assert_eq!(reconstruct(&shares[n - t - 1..], t).unwrap(), Gf::new(secret));
    }

    #[test]
    fn shamir_shares_are_marginally_uniformish(secret in 0u64..16, seed in any::<u64>()) {
        // Sanity rather than a statistical proof: two different secrets
        // produce share sets that differ (the polynomial actually moved) and
        // individual share values are spread over the field, not clustered
        // near the secret.
        let mut rng = SplitMix64::new(seed);
        let shares = share(Gf::new(secret), 2, 5, &mut rng).unwrap();
        let near = shares
            .iter()
            .filter(|s| s.y.value().abs_diff(secret) < 1_000_000)
            .count();
        prop_assert!(near <= 1, "shares cluster near the secret");
    }

    #[test]
    fn tampering_any_share_breaks_consistency(
        secret in any::<u64>(),
        idx in 0usize..6,
        delta in 1u64..1000,
        seed in any::<u64>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let mut shares = share(Gf::new(secret), 2, 6, &mut rng).unwrap();
        shares[idx].y += Gf::new(delta);
        prop_assert!(!consistent(&shares, 2).unwrap());
    }
}

#[test]
fn honest_fc_outcomes_are_uniformish() {
    // χ²-free sanity: over 64 seeds every processor of an n = 5 network is
    // elected at least once and no processor dominates.
    let n = 5;
    let mut counts = vec![0u32; n];
    for seed in 0..64 {
        let exec = ALeadFc::new(n).with_seed(seed).run_honest();
        counts[exec.outcome.elected().expect("honest success") as usize] += 1;
    }
    assert!(counts.iter().all(|&c| c > 0), "counts {counts:?}");
    assert!(counts.iter().all(|&c| c < 32), "counts {counts:?}");
}

#[test]
fn honest_outcome_is_schedule_independent() {
    // Definition 2.3 quantifies over oblivious schedules. A-LEADfc's
    // honest outcome is a function of the drawn secrets only: every
    // delivery interleaving elects the same leader.
    use fle_secretshare::FcMsg;
    use ring_sim::{RandomScheduler, SimBuilder, Topology};
    let n = 6usize;
    for seed in 0..6u64 {
        let p = ALeadFc::new(n).with_seed(seed);
        let reference = p.run_honest().outcome;
        for sched_seed in 0..5u64 {
            let mut builder = SimBuilder::<FcMsg>::new(Topology::complete(n))
                .scheduler(RandomScheduler::new(sched_seed))
                .wake_all()
                .step_limit((n as u64).pow(3) * 8 + 10_000);
            for id in 0..n {
                builder = builder.node(id, p.honest_node(id));
            }
            assert_eq!(
                builder.run().outcome,
                reference,
                "seed {seed}, schedule {sched_seed}"
            );
        }
    }
}

#[test]
fn pooling_attack_wins_under_every_schedule() {
    use fle_secretshare::{fc_pooling_deviation, FcMsg};
    use ring_sim::{LifoScheduler, RandomScheduler, SimBuilder, Topology};
    let n = 8usize;
    let p = ALeadFc::new(n).with_seed(4);
    let target = 3u64;
    let coalition = [0usize, 1, 2, 3];
    let build = |p: &ALeadFc| -> Vec<(usize, Box<dyn ring_sim::Node<FcMsg>>)> {
        let mut nodes = fc_pooling_deviation(p, &coalition, target);
        for id in 0..n {
            if !coalition.contains(&id) {
                nodes.push((id, Box::new(p.honest_node(id))));
            }
        }
        nodes
    };
    for sched_seed in 0..4u64 {
        let mut builder = SimBuilder::<FcMsg>::new(Topology::complete(n))
            .scheduler(RandomScheduler::new(sched_seed))
            .wake_all()
            .step_limit((n as u64).pow(3) * 8 + 10_000);
        for (id, node) in build(&p) {
            builder = builder.boxed_node(id, node);
        }
        assert_eq!(
            builder.run().outcome.elected(),
            Some(target),
            "schedule {sched_seed}"
        );
    }
    // LIFO delivery too.
    let mut builder = SimBuilder::<FcMsg>::new(Topology::complete(n))
        .scheduler(LifoScheduler::new())
        .wake_all()
        .step_limit((n as u64).pow(3) * 8 + 10_000);
    for (id, node) in build(&p) {
        builder = builder.boxed_node(id, node);
    }
    assert_eq!(builder.run().outcome.elected(), Some(target), "LIFO");
}

#[test]
fn resilience_crossover_sits_at_half_n() {
    // k = ⌈n/2⌉ forces the target every time; k = ⌈n/2⌉ − 1 does not.
    let n = 8;
    let target = 2u64;
    let mut forced_above = 0;
    let mut forced_below = 0;
    let trials = 24;
    for seed in 0..trials {
        let p = ALeadFc::new(n).with_seed(seed);
        if run_fc_attack(&p, &[0, 1, 2, 3], target).outcome.elected() == Some(target) {
            forced_above += 1;
        }
        if run_fc_attack(&p, &[0, 1, 2], target).outcome.elected() == Some(target) {
            forced_below += 1;
        }
    }
    assert_eq!(forced_above, trials, "majority coalition must always win");
    assert!(
        forced_below < trials / 2,
        "sub-majority coalition forced {forced_below}/{trials}"
    );
}
