//! Claim B.1: a **single** adversary controls `Basic-LEAD`.
//!
//! The adversary stays silent at wake-up, collects the other `n − 1`
//! secrets (they pile up on its incoming link because every honest
//! processor forwards), then "chooses" its own value to cancel the sum to
//! the target, and finally replays the collected values so that every
//! honest processor sees exactly the sequence an honest-but-slow
//! processor would have produced.

use crate::AttackError;
use fle_core::protocols::{BasicLead, BasicNode, TrialCache};
use fle_core::{Execution, Node, NodeId};
use ring_sim::Ctx;

/// [`TrialCache`] for the single-deviator fast path: honest positions run
/// the concrete [`BasicNode`], the one coalition slot runs the concrete
/// [`WaitAndCancel`] — the whole mix is monomorphized, zero boxes.
pub type BasicSingleCache = TrialCache<u64, BasicNode, WaitAndCancel>;

/// The Claim B.1 single-adversary attack on [`BasicLead`].
///
/// # Examples
///
/// ```
/// use fle_attacks::BasicSingleAttack;
/// use fle_core::protocols::BasicLead;
/// use ring_sim::Outcome;
///
/// let protocol = BasicLead::new(8).with_seed(11);
/// let exec = BasicSingleAttack::new(3, 5).run(&protocol).unwrap();
/// assert_eq!(exec.outcome, Outcome::Elected(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicSingleAttack {
    adversary: NodeId,
    target: u64,
}

impl BasicSingleAttack {
    /// An adversary at ring position `adversary` forcing leader `target`.
    pub fn new(adversary: NodeId, target: u64) -> Self {
        Self { adversary, target }
    }

    /// The adversary's position.
    pub fn adversary(&self) -> NodeId {
        self.adversary
    }

    /// The forced leader.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// Builds the adversarial node.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Infeasible`] if the position or target is out
    /// of range for the protocol instance.
    pub fn adversary_node(
        &self,
        protocol: &BasicLead,
    ) -> Result<(NodeId, Box<dyn Node<u64>>), AttackError> {
        let (pos, node) = self.adversary_ring_node(protocol)?;
        Ok((pos, Box::new(node)))
    }

    /// [`BasicSingleAttack::adversary_node`] as the concrete
    /// [`WaitAndCancel`] type — the form the monomorphized single-deviator
    /// fast path ([`BasicSingleAttack::run_in`]) stores unboxed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BasicSingleAttack::adversary_node`].
    pub fn adversary_ring_node(
        &self,
        protocol: &BasicLead,
    ) -> Result<(NodeId, WaitAndCancel), AttackError> {
        let n = fle_core::protocols::FleProtocol::n(protocol);
        if self.adversary >= n {
            return Err(AttackError::Infeasible(format!(
                "adversary position {} out of range for n={n}",
                self.adversary
            )));
        }
        if self.target >= n as u64 {
            return Err(AttackError::Infeasible(format!(
                "target {} out of range for n={n}",
                self.target
            )));
        }
        Ok((
            self.adversary,
            WaitAndCancel {
                n: n as u64,
                w: self.target,
                collected: Vec::with_capacity(n - 1),
            },
        ))
    }

    /// Runs the deviation against a protocol instance.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Infeasible`] when preconditions fail.
    pub fn run(&self, protocol: &BasicLead) -> Result<Execution, AttackError> {
        let node = self.adversary_node(protocol)?;
        Ok(protocol.run_with(vec![node]))
    }

    /// [`BasicSingleAttack::run`] through a per-thread [`BasicSingleCache`]
    /// — the fully monomorphized attack fast path: cached engine, pooled
    /// scheduler, reused [`Execution`], and *no* `Box` anywhere (the single
    /// deviator is stored as its concrete type). Bit-identical outcomes to
    /// [`BasicSingleAttack::run`].
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Infeasible`] when preconditions fail.
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from the protocol's.
    pub fn run_in<'c>(
        &self,
        protocol: &BasicLead,
        cache: &'c mut BasicSingleCache,
    ) -> Result<&'c Execution, AttackError> {
        let node = self.adversary_ring_node(protocol)?;
        Ok(protocol.run_with_in(vec![node], cache))
    }
}

/// The adversary: silent at wake-up; after `n − 1` receives it knows every
/// other secret, emits `w − Σ others (mod n)` and replays the collected
/// values in arrival order (exactly what an honest node would have sent).
///
/// Public as a concrete type so [`BasicSingleAttack::run_in`]'s
/// single-deviator mix can store it unboxed; build it with
/// [`BasicSingleAttack::adversary_ring_node`].
pub struct WaitAndCancel {
    n: u64,
    w: u64,
    collected: Vec<u64>,
}

impl Node<u64> for WaitAndCancel {
    fn on_wake(&mut self, _ctx: &mut Ctx<'_, u64>) {
        // Deviation: do not commit to a value yet.
    }

    fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
        let m = msg % self.n;
        self.collected.push(m);
        if self.collected.len() == (self.n - 1) as usize {
            let others: u64 = self.collected.iter().sum::<u64>() % self.n;
            let own = (self.w + self.n - others % self.n) % self.n;
            ctx.send(own);
            for &v in &self.collected {
                ctx.send(v);
            }
            ctx.terminate(Some(self.w));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fle_core::protocols::FleProtocol;
    use ring_sim::Outcome;

    #[test]
    fn controls_every_target_from_every_position() {
        let n = 7;
        for seed in 0..3 {
            let protocol = BasicLead::new(n).with_seed(seed);
            for adv in 0..n {
                for w in 0..n as u64 {
                    let exec = BasicSingleAttack::new(adv, w)
                        .run(&protocol)
                        .expect("feasible");
                    assert_eq!(
                        exec.outcome,
                        Outcome::Elected(w),
                        "seed={seed} adv={adv} w={w}"
                    );
                }
            }
        }
    }

    #[test]
    fn honest_processors_do_not_detect() {
        // Success implies every honest processor passed validation and all
        // outputs agree; additionally everyone sent exactly n messages.
        let protocol = BasicLead::new(9).with_seed(4);
        let exec = BasicSingleAttack::new(2, 0).run(&protocol).unwrap();
        assert_eq!(exec.outcome, Outcome::Elected(0));
        assert!(exec.stats.sent.iter().all(|&s| s == 9));
    }

    #[test]
    fn rejects_out_of_range() {
        let protocol = BasicLead::new(4).with_seed(0);
        assert!(BasicSingleAttack::new(9, 0).run(&protocol).is_err());
        assert!(BasicSingleAttack::new(0, 9).run(&protocol).is_err());
    }

    #[test]
    fn attack_is_a_profitable_deviation() {
        // The adversary's indicator utility rises from ~1/n to 1 — the
        // paper's notion of a non-resilient protocol (Claim B.1).
        use fle_core::game::RationalUtility;
        let n = 8usize;
        let adv = 5usize;
        let u = RationalUtility::indicator(n, adv);
        let mut honest_hits = 0.0;
        let mut attack_hits = 0.0;
        let trials = 400;
        for seed in 0..trials {
            let p = BasicLead::new(n).with_seed(seed);
            honest_hits += u.of(p.run_honest().outcome);
            let exec = BasicSingleAttack::new(adv, adv as u64).run(&p).unwrap();
            attack_hits += u.of(exec.outcome);
        }
        let honest = honest_hits / trials as f64;
        let attacked = attack_hits / trials as f64;
        assert!(honest < 0.3, "honest expected utility {honest}");
        assert!((attacked - 1.0).abs() < 1e-12);
    }
}
