//! The Cubic Attack of Theorem 4.3: `k ≥ 2·∛n` adversaries control
//! `A-LEADuni`.
//!
//! The refinement over the rushing attack of Lemma 4.1 is that the `k`
//! spare messages are used to **push information faster along the ring**:
//! the honest segments have geometrically decreasing lengths
//! `l_i = (k + 1 − i)(k − 1)`, and each adversary, after piping
//! `n − k − l_i` messages, bursts `k − 1` zeros that let the next
//! adversary finish its learning phase early. The total ring size covered
//! is `k + (k−1)k(k+1)/2 = Θ(k³)`, hence `k = Θ(∛n)` suffices.

use crate::AttackError;
use fle_core::protocols::{ALeadTrialCache, ALeadUni, FleProtocol};
use fle_core::{Coalition, DeviationNodes, Execution, Node, NodeId};
use ring_sim::Ctx;

/// A feasible cubic-attack layout for a ring of `n` processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubicPlan {
    n: usize,
    distances: Vec<usize>,
    positions: Vec<NodeId>,
}

impl CubicPlan {
    /// The coalition size `k`.
    pub fn k(&self) -> usize {
        self.distances.len()
    }

    /// The honest-segment lengths `l_1 ≥ l_2 ≥ … ≥ l_k`, satisfying
    /// `l_i ≤ l_{i+1} + k − 1`, `l_k ≤ k − 1`, and `Σ l_i = n − k`.
    pub fn distances(&self) -> &[usize] {
        &self.distances
    }

    /// The adversary positions (the first at ring position 1, so the
    /// origin 0 is the last honest processor before `a_1`).
    pub fn positions(&self) -> &[NodeId] {
        &self.positions
    }

    /// The plan as a [`Coalition`].
    pub fn coalition(&self) -> Coalition {
        Coalition::new(self.n, self.positions.clone()).expect("plan positions are valid")
    }
}

/// Computes the minimal-`k` cubic layout for a ring of `n` processors
/// (Theorem 4.3's distance profile, water-filled down to `Σ l_i = n − k`).
///
/// # Errors
///
/// Returns [`AttackError::Infeasible`] for rings too small to host the
/// staggered layout (`n < 6`).
pub fn cubic_distances(n: usize) -> Result<CubicPlan, AttackError> {
    if n < 6 {
        return Err(AttackError::Infeasible(format!(
            "ring of {n} too small for the cubic layout"
        )));
    }
    // Minimal k with capacity (k−1)·k·(k+1)/2 ≥ n − k.
    let mut k = 2usize;
    while (k - 1) * k * (k + 1) / 2 < n - k {
        k += 1;
    }
    plan_with_k(n, k)
}

/// Builds the cubic layout with an explicit coalition size `k`.
///
/// # Errors
///
/// Returns [`AttackError::Infeasible`] when `k` is too small for `n`
/// (capacity below `n − k`) or degenerate (`k < 2` or `k ≥ n`).
pub fn plan_with_k(n: usize, k: usize) -> Result<CubicPlan, AttackError> {
    if k < 2 || k >= n {
        return Err(AttackError::Infeasible(format!(
            "cubic attack needs 2 <= k < n, got k={k}, n={n}"
        )));
    }
    let capacity = (k - 1) * k * (k + 1) / 2;
    if capacity < n - k {
        return Err(AttackError::Infeasible(format!(
            "k={k} covers at most {capacity} honest processors, ring needs {}",
            n - k
        )));
    }
    // Maximal profile l_i = (k + 1 − i)(k − 1), then water-fill the top
    // plateau down until Σ l_i = n − k, keeping the sequence non-increasing
    // (so l_1 stays maximal and every step difference stays ≤ k − 1).
    let mut l: Vec<u64> = (1..=k).map(|i| ((k + 1 - i) * (k - 1)) as u64).collect();
    let total: u64 = l.iter().sum();
    let mut excess = total - (n - k) as u64;
    let mut width = 1usize;
    while excess > 0 {
        let cur = l[width - 1];
        let next = if width < k { l[width] } else { 0 };
        let droppable = (cur - next) * width as u64;
        if width < k && droppable <= excess {
            for slot in l.iter_mut().take(width) {
                *slot = next;
            }
            excess -= droppable;
            width += 1;
        } else {
            let q = excess / width as u64;
            let r = (excess % width as u64) as usize;
            for slot in l.iter_mut().take(width) {
                *slot -= q;
            }
            for slot in l.iter_mut().take(width).skip(width - r) {
                *slot -= 1;
            }
            excess = 0;
        }
    }
    let distances: Vec<usize> = l.into_iter().map(|v| v as usize).collect();
    debug_assert_eq!(distances.iter().sum::<usize>(), n - k);
    // a_1 at position 1; a_{i+1} = a_i + l_i + 1.
    let mut positions = Vec::with_capacity(k);
    let mut pos = 1usize;
    for &li in &distances {
        positions.push(pos % n);
        pos += li + 1;
    }
    Ok(CubicPlan {
        n,
        distances,
        positions,
    })
}

/// The Theorem 4.3 cubic attack on [`ALeadUni`].
///
/// # Examples
///
/// ```
/// use fle_attacks::{cubic_distances, CubicAttack};
/// use fle_core::protocols::ALeadUni;
/// use ring_sim::Outcome;
///
/// let n = 60;
/// let plan = cubic_distances(n).unwrap();
/// assert!(plan.k() <= 2 * ((n as f64).cbrt().ceil() as usize));
/// let protocol = ALeadUni::new(n).with_seed(4);
/// let exec = CubicAttack::new(42).run(&protocol, &plan).unwrap();
/// assert_eq!(exec.outcome, Outcome::Elected(42));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CubicAttack {
    target: u64,
}

impl CubicAttack {
    /// An attack forcing the election of `target`.
    pub fn new(target: u64) -> Self {
        Self { target }
    }

    /// The forced leader.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// Builds the deviation nodes for a plan.
    ///
    /// # Errors
    ///
    /// [`AttackError::Infeasible`] when the plan does not match the
    /// protocol's ring size or the target is out of range.
    pub fn adversary_nodes(
        &self,
        protocol: &ALeadUni,
        plan: &CubicPlan,
    ) -> Result<DeviationNodes<u64>, AttackError> {
        let n = protocol.n();
        if plan.n != n {
            return Err(AttackError::Infeasible(format!(
                "plan is for n={}, protocol has n={n}",
                plan.n
            )));
        }
        if self.target >= n as u64 {
            return Err(AttackError::Infeasible(format!(
                "target {} out of range for n={n}",
                self.target
            )));
        }
        let k = plan.k();
        Ok(plan
            .positions
            .iter()
            .zip(&plan.distances)
            .map(|(&pos, &l)| {
                let node: Box<dyn Node<u64>> = Box::new(CubicAdversary {
                    n: n as u64,
                    k: k as u64,
                    l: l as u64,
                    w: self.target,
                    count: 0,
                    stored: Vec::with_capacity(n - k),
                });
                (pos, node)
            })
            .collect())
    }

    /// Runs the deviation against a protocol instance.
    ///
    /// # Errors
    ///
    /// Propagates [`CubicAttack::adversary_nodes`] errors.
    pub fn run(&self, protocol: &ALeadUni, plan: &CubicPlan) -> Result<Execution, AttackError> {
        let nodes = self.adversary_nodes(protocol, plan)?;
        Ok(protocol.run_with(nodes))
    }

    /// [`CubicAttack::run`] through a per-thread [`ALeadTrialCache`]:
    /// cached engine, pooled scheduler and a reused [`Execution`], with
    /// honest positions on the concrete `ALeadNode`. Bit-identical
    /// outcomes to [`CubicAttack::run`].
    ///
    /// # Errors
    ///
    /// Propagates [`CubicAttack::adversary_nodes`] errors.
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from the protocol's.
    pub fn run_in<'c>(
        &self,
        protocol: &ALeadUni,
        plan: &CubicPlan,
        cache: &'c mut ALeadTrialCache,
    ) -> Result<&'c Execution, AttackError> {
        let nodes = self.adversary_nodes(protocol, plan)?;
        Ok(protocol.run_with_in(nodes, cache))
    }
}

/// The Appendix C pseudo-code, verbatim: transfer `n − k − l_i` messages,
/// burst `k − 1` zeros, silently collect `l_i` more (the secrets of the
/// own segment), send the correcting value, replay the segment's secrets.
struct CubicAdversary {
    n: u64,
    k: u64,
    l: u64,
    w: u64,
    count: u64,
    stored: Vec<u64>,
}

impl Node<u64> for CubicAdversary {
    fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
        let m = msg % self.n;
        self.count += 1;
        if self.count > self.n - self.k {
            return; // post-attack deliveries are irrelevant
        }
        self.stored.push(m);
        if self.count <= self.n - self.k - self.l {
            ctx.send(m);
        }
        if self.count == self.n - self.k - self.l {
            for _ in 0..self.k - 1 {
                ctx.send(0);
            }
        }
        if self.count == self.n - self.k {
            let total: u64 = self.stored.iter().sum::<u64>() % self.n;
            ctx.send((self.w + self.n - total) % self.n);
            let from = (self.n - self.k - self.l) as usize;
            for i in from..self.stored.len() {
                let v = self.stored[i];
                ctx.send(v);
            }
            ctx.terminate(Some(self.w));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_sim::Outcome;

    #[test]
    fn plan_invariants_hold_for_many_n() {
        for n in [6, 10, 20, 50, 100, 200, 500, 1000, 2500] {
            let plan = cubic_distances(n).unwrap();
            let k = plan.k();
            let d = plan.distances();
            assert_eq!(d.iter().sum::<usize>(), n - k, "n={n}");
            assert!(d[k - 1] < k, "n={n} l_k too long");
            for i in 0..k - 1 {
                assert!(d[i] >= d[i + 1], "n={n} not non-increasing: {d:?}");
                assert!(d[i] < d[i + 1] + k, "n={n} step too large: {d:?}");
            }
            assert_eq!(d[0], *d.iter().max().unwrap());
            // k = Θ(∛n): at most 2·∛n for the minimal plan (Theorem 4.3).
            assert!(
                k as f64 <= 2.0 * (n as f64).cbrt() + 1.0,
                "n={n} k={k} too large"
            );
        }
    }

    #[test]
    fn plan_positions_leave_origin_honest() {
        for n in [12, 64, 333] {
            let plan = cubic_distances(n).unwrap();
            assert!(!plan.positions().contains(&0), "n={n}");
            let coalition = plan.coalition();
            assert_eq!(coalition.k(), plan.k());
        }
    }

    #[test]
    fn cubic_attack_controls_every_target() {
        for n in [20, 47, 100] {
            let plan = cubic_distances(n).unwrap();
            let protocol = ALeadUni::new(n).with_seed(8);
            for w in [0u64, 1, (n as u64) - 1] {
                let exec = CubicAttack::new(w).run(&protocol, &plan).unwrap();
                assert_eq!(exec.outcome, Outcome::Elected(w), "n={n} w={w}");
            }
        }
    }

    #[test]
    fn cubic_beats_rushing_on_coalition_size() {
        // For n = 1000 the cubic attack needs k ≈ 2·∛1000 = 20 while the
        // rushing attack needs k ≈ √1000 ≈ 32.
        let plan = cubic_distances(1000).unwrap();
        assert!(plan.k() < 24, "k = {}", plan.k());
        let protocol = ALeadUni::new(1000).with_seed(1);
        let exec = CubicAttack::new(999).run(&protocol, &plan).unwrap();
        assert_eq!(exec.outcome, Outcome::Elected(999));
    }

    #[test]
    fn explicit_small_k_is_rejected() {
        // k = 3 covers at most 2·3·4/2 = 12 honest processors.
        assert!(plan_with_k(100, 3).is_err());
        assert!(plan_with_k(15, 3).is_ok());
    }

    #[test]
    fn tiny_rings_rejected() {
        assert!(cubic_distances(5).is_err());
    }

    #[test]
    fn all_processors_send_exactly_n_under_attack() {
        let n = 30;
        let plan = cubic_distances(n).unwrap();
        let protocol = ALeadUni::new(n).with_seed(12);
        let exec = CubicAttack::new(7).run(&protocol, &plan).unwrap();
        assert_eq!(exec.outcome, Outcome::Elected(7));
        assert!(exec.stats.sent.iter().all(|&s| s == n as u64));
    }
}
