//! # fle-attacks — adversarial deviations against fair leader election
//!
//! Executable versions of every attack in Yifrach & Mansour (PODC 2018).
//! Each attack is a *coalition strategy*: it replaces the honest behaviour
//! of the coalition's processors and, when its layout preconditions hold,
//! forces the protocol to elect an arbitrary target `w` — without any
//! honest processor detecting a deviation.
//!
//! | Attack | Paper | Victim | Coalition needed |
//! |---|---|---|---|
//! | [`BasicSingleAttack`] | Claim B.1 | `Basic-LEAD` | 1 anywhere |
//! | [`RushingAttack`] | Lemma 4.1 / Thm 4.2 | `A-LEADuni` | every `l_j ≤ k−1` (e.g. `k ≥ √n` equally spaced) |
//! | [`CubicAttack`] | Thm 4.3 | `A-LEADuni` | `k ≥ 2·∛n`, geometric distances |
//! | [`RandomLocatedAttack`] | Thm C.1 | `A-LEADuni` | `Θ(√(n log n))` random w.h.p. |
//! | [`PhaseRushingAttack`] | §6 remark | `PhaseAsyncLead` | `k ≥ √n + 3`, every `l_j ≤ k−1` |
//! | [`PhaseBurstAttack`] | §6 motivation | `PhaseAsyncLead` | any — **must fail** (detection) |
//! | [`PhaseSumAttack`] | App. E.4 | `PhaseSumLead` | `k = 4` equally spaced |
//! | [`WakeupIdLieAttack`] | App. H | `WakeLead` (unknown ids) | 1 anywhere (`E[u₀] = k/n`) |
//! | [`WakeupMaskAttack`] | App. H | `WakeLead` (unknown ids) | every `l_j ≤ k−1`; per-segment origins |
//! | [`PhaseGuessAttack`] | §6 ablation | `PhaseAsyncLead` | 1 — survives with probability exactly `1/m` |
//!
//! Attacks whose layout preconditions fail return
//! [`AttackError::Infeasible`] instead of running — the experiments use
//! exactly this boundary to locate the paper's resilience crossovers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basic_single;
mod cubic;
mod phase_burst;
mod phase_guess;
mod phase_rushing;
mod phase_sum;
mod random_located;
mod runner;
mod rushing;
mod wakeup_mask;

pub use basic_single::{BasicSingleAttack, BasicSingleCache, WaitAndCancel};
pub use cubic::{cubic_distances, plan_with_k, CubicAttack, CubicPlan};
pub use phase_burst::PhaseBurstAttack;
pub use phase_guess::PhaseGuessAttack;
pub use phase_rushing::{PhaseRusher, PhaseRushingAttack, PhaseRushingCache};
pub use phase_sum::PhaseSumAttack;
pub use random_located::RandomLocatedAttack;
pub use runner::{
    build_runner, AttackKind, AttackRunner, AttackTrialResult, RANDOM_LOCATED_WINDOW,
};
pub use rushing::{Rusher, RushingAttack, RushingCache};
pub use wakeup_mask::{MaskPlan, WakeupIdLieAttack, WakeupMaskAttack};

/// Why an attack could not be mounted with the given coalition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackError {
    /// The coalition layout violates the attack's preconditions; the
    /// string explains which one (e.g. a segment longer than `k − 1`).
    Infeasible(String),
}

impl std::fmt::Display for AttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackError::Infeasible(why) => write!(f, "attack infeasible: {why}"),
        }
    }
}

impl std::error::Error for AttackError {}
