//! Appendix H attacks on the unknown-ids protocol `WakeLead`.
//!
//! The paper's Appendix H identifies two distinct problems with running
//! the ring election when the id set is *not* known in advance:
//!
//! 1. **The problem definition is fragile.** Under the natural extension
//!    of rational utilities to an id space `Σ` — `u₀(x) = 1[x ∉ Ω]`, where
//!    `Ω` is the true id set — a coalition that simply lies about its ids
//!    gains expected utility `k/n`, so *no* protocol is `ε`-`k`-resilient
//!    for any `k ≥ 1`. [`WakeupIdLieAttack`] reproduces this exactly: the
//!    adversaries follow the protocol to the letter, except their
//!    announcements are fabricated ids.
//!
//! 2. **The wake-up phase leaks and misleads.** Adversaries can rewrite
//!    the ids crossing them so that *every honest segment believes it
//!    contains the origin* (the minimum id): each adversary masks foreign
//!    honest ids (making them large), restores them when they re-enter
//!    their home segment, and marks coalition announcements so they pass
//!    verbatim. [`WakeupMaskAttack`] combines this with the Lemma 4.1
//!    rushing machinery: every segment runs "its own" election —
//!    fed, counted and validated exactly as `A-LEADuni` demands — yet all
//!    of them elect the same fabricated coalition id. The attack succeeds
//!    with probability 1 whenever every honest segment has `l_j ≤ k − 1`,
//!    while every honest processor passes all validations.
//!
//! The paper leaves extending the *resilience* proofs to the wake-up
//! model open; these attacks are the constructive half of Appendix H.

use crate::AttackError;
use fle_core::protocols::{FleProtocol, WakeLead, WakeMsg, WakeTrialCache};
use fle_core::{Coalition, DeviationNodes, Execution, Node, NodeId};
use ring_sim::Ctx;

/// High bit adversaries OR into foreign honest ids ("masking"). True ids
/// are 48-bit, so masking is invertible and collision-free.
const FOREIGN_MARK: u64 = 1 << 50;
/// High bit marking coalition announcements, which every adversary
/// forwards verbatim so all segments agree on them.
const COALITION_MARK: u64 = 1 << 51;

/// The Appendix H id-lying deviation: protocol-honest behaviour with
/// fabricated id announcements.
///
/// # Examples
///
/// ```
/// use fle_attacks::WakeupIdLieAttack;
/// use fle_core::protocols::{FleProtocol, WakeLead};
/// use fle_core::Coalition;
///
/// let protocol = WakeLead::new(8).with_seed(1);
/// let coalition = Coalition::new(8, vec![2, 5]).unwrap();
/// let exec = WakeupIdLieAttack::new().run(&protocol, &coalition).unwrap();
/// let winner = exec.outcome.elected().unwrap();
/// // The election still succeeds — but the winner may be a ghost id.
/// assert!(winner < u64::MAX);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WakeupIdLieAttack;

impl WakeupIdLieAttack {
    /// Creates the deviation.
    pub fn new() -> Self {
        Self
    }

    /// The fabricated id a coalition member at `pos` announces: its real
    /// id with the coalition mark bit set — guaranteed outside the 48-bit
    /// space `Ω`, yet indistinguishable from a legal id to processors
    /// that do not know `Ω`.
    pub fn fake_id(protocol: &WakeLead, pos: NodeId) -> u64 {
        protocol.ids()[pos] | COALITION_MARK
    }

    /// `true` iff `id` could not belong to the protocol's id space (used
    /// by experiments to score `u₀`).
    pub fn is_ghost(id: u64) -> bool {
        id >> WakeLead::ID_BITS != 0
    }

    /// Builds the deviation nodes.
    ///
    /// # Errors
    ///
    /// [`AttackError::Infeasible`] if the coalition is for a different
    /// ring size.
    pub fn adversary_nodes(
        &self,
        protocol: &WakeLead,
        coalition: &Coalition,
    ) -> Result<DeviationNodes<WakeMsg>, AttackError> {
        if coalition.n() != protocol.n() {
            return Err(AttackError::Infeasible(format!(
                "coalition is for a ring of {} but the protocol has n={}",
                coalition.n(),
                protocol.n()
            )));
        }
        Ok(coalition
            .positions()
            .iter()
            .map(|&pos| {
                (
                    pos,
                    protocol.node_with_identity(pos, Self::fake_id(protocol, pos)),
                )
            })
            .collect())
    }

    /// Runs the deviation.
    ///
    /// # Errors
    ///
    /// Propagates [`WakeupIdLieAttack::adversary_nodes`] errors.
    pub fn run(
        &self,
        protocol: &WakeLead,
        coalition: &Coalition,
    ) -> Result<Execution, AttackError> {
        Ok(protocol.run_with(self.adversary_nodes(protocol, coalition)?))
    }

    /// [`WakeupIdLieAttack::run`] through a per-thread [`WakeTrialCache`]:
    /// cached engine, pooled scheduler and a reused [`Execution`].
    /// Bit-identical outcomes to [`WakeupIdLieAttack::run`].
    ///
    /// # Errors
    ///
    /// Propagates [`WakeupIdLieAttack::adversary_nodes`] errors.
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from the protocol's.
    pub fn run_in<'c>(
        &self,
        protocol: &WakeLead,
        coalition: &Coalition,
        cache: &'c mut WakeTrialCache,
    ) -> Result<&'c Execution, AttackError> {
        let nodes = self.adversary_nodes(protocol, coalition)?;
        Ok(protocol.run_with_in(nodes, cache))
    }
}

/// The combined masking + rushing attack of Appendix H.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakeupMaskAttack {
    /// Which coalition member's fabricated id gets elected (index into
    /// the coalition's position list).
    target_member: usize,
}

/// The planning output of [`WakeupMaskAttack::plan`]: what each honest
/// segment will believe after the poisoned wake-up phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskPlan {
    /// The fabricated id every segment will elect.
    pub target_id: u64,
    /// Ring position of the targeted coalition member.
    pub target_pos: NodeId,
    /// Per non-empty honest segment: `(segment index, believed origin
    /// position, believed index of the target)`.
    pub segment_origins: Vec<(usize, NodeId, u64)>,
}

impl WakeupMaskAttack {
    /// An attack electing the fabricated id of the coalition's
    /// `target_member`-th position.
    pub fn new(target_member: usize) -> Self {
        Self { target_member }
    }

    /// Computes the per-segment beliefs the masking induces and checks
    /// the Lemma 4.1 feasibility condition (`l_j ≤ k − 1` for all `j`).
    ///
    /// # Errors
    ///
    /// [`AttackError::Infeasible`] on layout violations.
    pub fn plan(
        &self,
        protocol: &WakeLead,
        coalition: &Coalition,
    ) -> Result<MaskPlan, AttackError> {
        let n = protocol.n();
        if coalition.n() != n {
            return Err(AttackError::Infeasible(format!(
                "coalition is for a ring of {} but the protocol has n={n}",
                coalition.n()
            )));
        }
        let k = coalition.k();
        if self.target_member >= k {
            return Err(AttackError::Infeasible(format!(
                "target member {} out of range for k={k}",
                self.target_member
            )));
        }
        if let Some((j, l)) = coalition
            .distances()
            .into_iter()
            .enumerate()
            .find(|&(_, l)| l > k - 1)
        {
            return Err(AttackError::Infeasible(format!(
                "segment I_{j} has length {l} > k - 1 = {} (Lemma 4.1 requires l_j <= k - 1)",
                k - 1
            )));
        }
        let target_pos = coalition.positions()[self.target_member];
        let target_id = protocol.ids()[target_pos] | COALITION_MARK;
        let mut segment_origins = Vec::new();
        let positions = coalition.positions();
        let distances = coalition.distances();
        for (j, (&apos, &l)) in positions.iter().zip(distances.iter()).enumerate() {
            if l == 0 {
                continue;
            }
            // Believed origin of segment j: the member with the smallest
            // *raw* id (local ids stay unmasked; everything else is
            // larger by construction).
            let origin = (1..=l)
                .map(|s| (apos + s) % n)
                .min_by_key(|&p| protocol.ids()[p])
                .expect("segment is non-empty");
            let w = ((target_pos + n - origin) % n) as u64;
            segment_origins.push((j, origin, w));
        }
        Ok(MaskPlan {
            target_id,
            target_pos,
            segment_origins,
        })
    }

    /// Builds the deviation nodes.
    ///
    /// # Errors
    ///
    /// Propagates [`WakeupMaskAttack::plan`] errors.
    pub fn adversary_nodes(
        &self,
        protocol: &WakeLead,
        coalition: &Coalition,
    ) -> Result<DeviationNodes<WakeMsg>, AttackError> {
        let plan = self.plan(protocol, coalition)?;
        let n = protocol.n();
        let k = coalition.k();
        let mut nodes: DeviationNodes<WakeMsg> = Vec::with_capacity(k);
        for (idx, &pos) in coalition.positions().iter().enumerate() {
            let l = coalition.distances()[idx];
            // The ids of this adversary's successor segment, which it
            // must deliver unmasked for wake-ups to complete.
            let mut succ_ids = Vec::with_capacity(l);
            for step in 1..=l {
                succ_ids.push(protocol.ids()[(pos + step) % n]);
            }
            // Target index for this segment: position of the target in
            // the segment's believed ring (origin = its min raw id). For
            // empty segments the stream sum is never validated.
            let w = plan
                .segment_origins
                .iter()
                .find(|&&(j, _, _)| j == idx)
                .map(|&(_, _, w)| w)
                .unwrap_or(0);
            nodes.push((
                pos,
                Box::new(MaskRusher {
                    n: n as u64,
                    k: k as u64,
                    l: l as u64,
                    w,
                    announce: protocol.ids()[pos] | COALITION_MARK,
                    target_id: plan.target_id,
                    succ_ids,
                    ids_seen: 0,
                    count: 0,
                    sum: 0,
                    tail: Vec::with_capacity(l),
                }),
            ));
        }
        Ok(nodes)
    }

    /// Runs the full attack.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Infeasible`] when the layout precondition
    /// fails.
    pub fn run(
        &self,
        protocol: &WakeLead,
        coalition: &Coalition,
    ) -> Result<Execution, AttackError> {
        Ok(protocol.run_with(self.adversary_nodes(protocol, coalition)?))
    }

    /// [`WakeupMaskAttack::run`] through a per-thread [`WakeTrialCache`]:
    /// cached engine, pooled scheduler and a reused [`Execution`].
    /// Bit-identical outcomes to [`WakeupMaskAttack::run`].
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Infeasible`] when the layout precondition
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from the protocol's.
    pub fn run_in<'c>(
        &self,
        protocol: &WakeLead,
        coalition: &Coalition,
        cache: &'c mut WakeTrialCache,
    ) -> Result<&'c Execution, AttackError> {
        let nodes = self.adversary_nodes(protocol, coalition)?;
        Ok(protocol.run_with_in(nodes, cache))
    }
}

/// The Appendix H adversary: masks / restores ids during the wake-up
/// phase, then runs the Lemma 4.1 rushing strategy with a per-segment
/// target index.
struct MaskRusher {
    n: u64,
    k: u64,
    l: u64,
    /// Target *index* in the successor segment's believed ring.
    w: u64,
    /// Our fabricated announcement.
    announce: u64,
    /// The id every honest processor will end up electing.
    target_id: u64,
    /// Raw ids of the successor segment (delivered unmasked).
    succ_ids: Vec<u64>,
    ids_seen: u64,
    count: u64,
    sum: u64,
    tail: Vec<u64>,
}

impl Node<WakeMsg> for MaskRusher {
    fn on_wake(&mut self, ctx: &mut Ctx<'_, WakeMsg>) {
        ctx.send(WakeMsg::Id(self.announce));
    }

    fn on_message(&mut self, _from: NodeId, msg: WakeMsg, ctx: &mut Ctx<'_, WakeMsg>) {
        match msg {
            WakeMsg::Id(y) => {
                self.ids_seen += 1;
                if y == self.announce {
                    // Own announcement came full circle: wake-up done.
                    return;
                }
                if y & COALITION_MARK != 0 {
                    // Coalition announcements pass verbatim everywhere.
                    ctx.send(WakeMsg::Id(y));
                    return;
                }
                let raw = y & !FOREIGN_MARK;
                if self.succ_ids.contains(&raw) {
                    // Home-bound id: restore it so its owner's wake-up
                    // completes and the segment's local ids stay minimal.
                    ctx.send(WakeMsg::Id(raw));
                } else {
                    ctx.send(WakeMsg::Id(raw | FOREIGN_MARK));
                }
            }
            WakeMsg::Data(v) => {
                // Lemma 4.1 rushing with target index `w` (cf.
                // `RushingAttack`): pipe n − k, then burst.
                let m = v % self.n;
                self.count += 1;
                if self.count > self.n - self.k {
                    return;
                }
                self.sum = (self.sum + m) % self.n;
                if self.count > self.n - self.k - self.l {
                    self.tail.push(m);
                }
                ctx.send(WakeMsg::Data(m));
                if self.count == self.n - self.k {
                    let tail_sum = self.tail.iter().sum::<u64>() % self.n;
                    let correcting = (self.w + 2 * self.n - self.sum - tail_sum) % self.n;
                    ctx.send(WakeMsg::Data(correcting));
                    for _ in 0..(self.k - 1 - self.l) {
                        ctx.send(WakeMsg::Data(0));
                    }
                    for i in 0..self.tail.len() {
                        let v = self.tail[i];
                        ctx.send(WakeMsg::Data(v));
                    }
                    ctx.terminate(Some(self.target_id));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_sim::Outcome;

    #[test]
    fn id_lie_elects_ghosts_at_rate_k_over_n() {
        let n = 8;
        let coalition = Coalition::new(n, vec![1, 4]).unwrap();
        let mut ghosts = 0u32;
        let trials = 400;
        for seed in 0..trials {
            let protocol = WakeLead::new(n).with_seed(seed);
            let exec = WakeupIdLieAttack::new().run(&protocol, &coalition).unwrap();
            let winner = exec.outcome.elected().expect("protocol still succeeds");
            if WakeupIdLieAttack::is_ghost(winner) {
                ghosts += 1;
            } else {
                assert!(protocol.ids().contains(&winner));
            }
        }
        // E[u0] = k/n = 1/4; allow generous sampling slack.
        let rate = ghosts as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.08, "ghost rate {rate}");
    }

    #[test]
    fn id_lie_never_fails_the_election() {
        let n = 6;
        let coalition = Coalition::new(n, vec![0, 3]).unwrap();
        for seed in 0..40 {
            let protocol = WakeLead::new(n).with_seed(seed);
            let exec = WakeupIdLieAttack::new().run(&protocol, &coalition).unwrap();
            assert!(exec.outcome.elected().is_some(), "seed {seed}");
        }
    }

    #[test]
    fn mask_attack_forces_the_fabricated_target() {
        // n = 16, k = 4 equally spaced: l_j = 3 = k − 1.
        let n = 16;
        for seed in 0..10 {
            let protocol = WakeLead::new(n).with_seed(seed);
            let coalition = Coalition::equally_spaced(n, 4, 0).unwrap();
            let attack = WakeupMaskAttack::new(2);
            let plan = attack.plan(&protocol, &coalition).unwrap();
            let exec = attack.run(&protocol, &coalition).unwrap();
            assert_eq!(
                exec.outcome,
                Outcome::Elected(plan.target_id),
                "seed {seed}"
            );
            // The elected id is a ghost: it is not in the true id space.
            assert!(WakeupIdLieAttack::is_ghost(plan.target_id));
        }
    }

    #[test]
    fn mask_attack_allocates_an_origin_in_every_segment() {
        let n = 20;
        let protocol = WakeLead::new(n).with_seed(3);
        let coalition = Coalition::equally_spaced(n, 5, 1).unwrap();
        let plan = WakeupMaskAttack::new(0)
            .plan(&protocol, &coalition)
            .unwrap();
        // Five non-empty segments, each with its own believed origin.
        assert_eq!(plan.segment_origins.len(), 5);
        let mut origins: Vec<NodeId> = plan.segment_origins.iter().map(|&(_, o, _)| o).collect();
        origins.sort_unstable();
        origins.dedup();
        assert_eq!(origins.len(), 5, "origins must be distinct processors");
        // No believed origin is a coalition member.
        assert!(origins.iter().all(|o| !coalition.contains(*o)));
    }

    #[test]
    fn mask_attack_respects_the_lemma_41_boundary() {
        let n = 24;
        let protocol = WakeLead::new(n).with_seed(0);
        // k = 3 equally spaced: l_j = 7 > k − 1 = 2.
        let coalition = Coalition::equally_spaced(n, 3, 0).unwrap();
        let err = WakeupMaskAttack::new(0)
            .run(&protocol, &coalition)
            .unwrap_err();
        assert!(matches!(err, AttackError::Infeasible(_)));
    }

    #[test]
    fn mask_attack_works_for_every_target_member() {
        let n = 12;
        let protocol = WakeLead::new(n).with_seed(7);
        let coalition = Coalition::equally_spaced(n, 4, 2).unwrap();
        for member in 0..4 {
            let attack = WakeupMaskAttack::new(member);
            let plan = attack.plan(&protocol, &coalition).unwrap();
            let exec = attack.run(&protocol, &coalition).unwrap();
            assert_eq!(
                exec.outcome,
                Outcome::Elected(plan.target_id),
                "member {member}"
            );
        }
    }

    #[test]
    fn out_of_range_target_member_is_rejected() {
        let protocol = WakeLead::new(8).with_seed(0);
        let coalition = Coalition::new(8, vec![0, 4]).unwrap();
        assert!(WakeupMaskAttack::new(2)
            .plan(&protocol, &coalition)
            .is_err());
    }
}
