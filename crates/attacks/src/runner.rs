//! Uniform cached dispatch over every implemented attack.
//!
//! Each attack crate module exposes a `run_in` fast path taking its own
//! concrete protocol and [`TrialCache`](fle_core::protocols::TrialCache)
//! flavour; this module erases those differences behind one
//! [`AttackRunner`] trait so a harness can sweep any attack without
//! per-attack special cases. [`build_runner`] resolves an [`AttackKind`]
//! plus a coalition layout into a boxed runner owning its caches — built
//! once per worker thread, then allocation-free per trial in steady
//! state.

use crate::{
    cubic_distances, AttackError, BasicSingleAttack, BasicSingleCache, CubicAttack, CubicPlan,
    PhaseBurstAttack, PhaseGuessAttack, PhaseRushingAttack, PhaseRushingCache, PhaseSumAttack,
    RandomLocatedAttack, RushingAttack, RushingCache, WakeupIdLieAttack, WakeupMaskAttack,
};
use fle_core::protocols::{
    ALeadTrialCache, ALeadUni, BasicLead, PhaseAsyncLead, PhaseSumLead, PhaseTrialCache, WakeLead,
    WakeTrialCache,
};
use fle_core::{Coalition, Execution, NodeId};
use std::str::FromStr;

/// The circularity-detection window `C` used by [`AttackKind::RandomLocated`]
/// runners (the value every experiment and test in this repository uses).
pub const RANDOM_LOCATED_WINDOW: usize = 3;

/// Every attack the runner layer can dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// [`BasicSingleAttack`] (Claim B.1) on `Basic-LEAD`.
    BasicSingle,
    /// [`RushingAttack`] (Lemma 4.1 / Thm 4.2) on `A-LEADuni`.
    Rushing,
    /// [`CubicAttack`] (Thm 4.3) on `A-LEADuni`.
    Cubic,
    /// [`RandomLocatedAttack`] (Thm C.1) on `A-LEADuni`.
    RandomLocated,
    /// [`PhaseRushingAttack`] (§6 remark) on `PhaseAsyncLead`.
    PhaseRushing,
    /// [`PhaseGuessAttack`] (§6 ablation) on `PhaseAsyncLead`.
    PhaseGuess,
    /// [`PhaseBurstAttack`] (§6 motivation, must fail) on `PhaseAsyncLead`.
    PhaseBurst,
    /// [`PhaseSumAttack`] (App. E.4) on `PhaseSumLead`.
    PhaseSum,
    /// [`WakeupIdLieAttack`] (App. H) on `WakeLead`.
    WakeupIdLie,
    /// [`WakeupMaskAttack`] (App. H) on `WakeLead`.
    WakeupMask,
}

impl AttackKind {
    /// All attack kinds, in documentation order.
    pub const ALL: [AttackKind; 10] = [
        AttackKind::BasicSingle,
        AttackKind::Rushing,
        AttackKind::Cubic,
        AttackKind::RandomLocated,
        AttackKind::PhaseRushing,
        AttackKind::PhaseGuess,
        AttackKind::PhaseBurst,
        AttackKind::PhaseSum,
        AttackKind::WakeupIdLie,
        AttackKind::WakeupMask,
    ];

    /// The canonical spelling accepted by [`FromStr`].
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::BasicSingle => "basic_single",
            AttackKind::Rushing => "rushing",
            AttackKind::Cubic => "cubic",
            AttackKind::RandomLocated => "random_located",
            AttackKind::PhaseRushing => "phase_rushing",
            AttackKind::PhaseGuess => "phase_guess",
            AttackKind::PhaseBurst => "phase_burst",
            AttackKind::PhaseSum => "phase_sum",
            AttackKind::WakeupIdLie => "wakeup_id_lie",
            AttackKind::WakeupMask => "wakeup_mask",
        }
    }

    /// The display name of the protocol this attack targets.
    pub fn protocol_name(self) -> &'static str {
        match self {
            AttackKind::BasicSingle => "Basic-LEAD",
            AttackKind::Rushing | AttackKind::Cubic | AttackKind::RandomLocated => "A-LEADuni",
            AttackKind::PhaseRushing | AttackKind::PhaseGuess | AttackKind::PhaseBurst => {
                "PhaseAsyncLead"
            }
            AttackKind::PhaseSum => "PhaseSumLead",
            AttackKind::WakeupIdLie | AttackKind::WakeupMask => "WakeLead",
        }
    }

    /// `true` iff the target protocol derives per-round values from a
    /// random function, i.e. the runner's `fn_key` argument matters.
    pub fn uses_fn_key(self) -> bool {
        matches!(
            self,
            AttackKind::PhaseRushing | AttackKind::PhaseGuess | AttackKind::PhaseBurst
        )
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for AttackKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AttackKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                format!(
                    "unknown attack '{s}' (expected basic_single | rushing | cubic | \
                     random_located | phase_rushing | phase_guess | phase_burst | phase_sum | \
                     wakeup_id_lie | wakeup_mask)"
                )
            })
    }
}

/// One completed adversarial trial: the cached execution plus whether the
/// attack achieved its goal (by its own success predicate — forcing a
/// specific winner for most attacks, electing a ghost id for
/// [`AttackKind::WakeupIdLie`], surviving validation for
/// [`AttackKind::PhaseGuess`]).
pub struct AttackTrialResult<'a> {
    /// The execution, borrowed from the runner's internal cache.
    pub exec: &'a Execution,
    /// Whether the attack's success predicate held.
    pub success: bool,
}

/// A reusable per-thread attack executor: protocol bases hoisted,
/// engine/scheduler/arena cached, allocation-free per trial in steady
/// state.
///
/// `seed` is the protocol instance seed, `fn_key` selects the random
/// function for phase protocols (ignored elsewhere — see
/// [`AttackKind::uses_fn_key`]), and `target` is the attack's goal:
/// the forced leader for most attacks, the coalition member *index*
/// for [`AttackKind::WakeupMask`], and ignored by
/// [`AttackKind::PhaseGuess`] / [`AttackKind::WakeupIdLie`] whose
/// success predicates do not name a winner.
pub trait AttackRunner {
    /// Runs one trial.
    ///
    /// # Errors
    ///
    /// [`AttackError::Infeasible`] when the attack's preconditions fail
    /// for this instance.
    fn run_trial(
        &mut self,
        seed: u64,
        fn_key: u64,
        target: u64,
    ) -> Result<AttackTrialResult<'_>, AttackError>;

    /// Installs (or clears) a timed network on the runner's trial cache:
    /// subsequent trials run on the engine's virtual-clock path under
    /// `net`'s per-link latency/loss/duplication profiles, with the
    /// network-noise stream derived from each trial's seed. `None`
    /// restores the untimed FIFO fast path.
    fn set_timed_net(&mut self, net: Option<&ring_sim::TimedNetConfig>);

    /// Installs (or clears) a crash-fault configuration: each subsequent
    /// trial draws a [`ring_sim::FaultPlan`] from its trial seed (through
    /// the salt-separated fault stream) and applies it for that trial.
    /// `None` restores the fault-free path.
    fn set_faults(&mut self, cfg: Option<&ring_sim::FaultConfig>);
}

/// Builds the cached runner for `kind` on a ring of `n` with the given
/// coalition layout.
///
/// # Errors
///
/// [`AttackError::Infeasible`] when the coalition is for a different ring
/// size, when a single-adversary attack gets `k != 1`, or when
/// [`AttackKind::Cubic`] gets a layout other than its own Theorem 4.3
/// geometric one (pass `cubic_distances(n)?.coalition()`).
///
/// # Panics
///
/// Panics if `n` is below the victim protocol's minimum ring size
/// (e.g. `PhaseAsyncLead` needs `n >= 4`).
pub fn build_runner(
    kind: AttackKind,
    n: usize,
    coalition: &Coalition,
) -> Result<Box<dyn AttackRunner>, AttackError> {
    if coalition.n() != n {
        return Err(AttackError::Infeasible(format!(
            "coalition is for n={}, sweep has n={n}",
            coalition.n()
        )));
    }
    Ok(match kind {
        AttackKind::BasicSingle => Box::new(BasicSingleRunner {
            base: BasicLead::new(n),
            pos: single_position(kind, coalition)?,
            cache: BasicSingleCache::ring(n),
        }),
        AttackKind::Rushing => Box::new(RushingRunner {
            base: ALeadUni::new(n),
            coalition: coalition.clone(),
            cache: RushingCache::ring(n),
        }),
        AttackKind::Cubic => {
            let plan = cubic_distances(n)?;
            if plan.positions() != coalition.positions() {
                return Err(AttackError::Infeasible(format!(
                    "cubic attack dictates its own Theorem 4.3 layout {:?}; \
                     use the cubic coalition placement",
                    plan.positions()
                )));
            }
            Box::new(CubicRunner {
                base: ALeadUni::new(n),
                plan,
                cache: ALeadTrialCache::ring(n),
            })
        }
        AttackKind::RandomLocated => Box::new(RandomLocatedRunner {
            base: ALeadUni::new(n),
            coalition: coalition.clone(),
            cache: ALeadTrialCache::ring(n),
        }),
        AttackKind::PhaseRushing => Box::new(PhaseRushingRunner {
            base: PhaseBase::new(n),
            coalition: coalition.clone(),
            cache: PhaseRushingCache::ring(n),
        }),
        AttackKind::PhaseGuess => Box::new(PhaseGuessRunner {
            base: PhaseBase::new(n),
            pos: single_position(kind, coalition)?,
            cache: PhaseTrialCache::ring(n),
        }),
        AttackKind::PhaseBurst => Box::new(PhaseBurstRunner {
            base: PhaseBase::new(n),
            coalition: coalition.clone(),
            cache: PhaseTrialCache::ring(n),
        }),
        AttackKind::PhaseSum => Box::new(PhaseSumRunner {
            base: PhaseSumLead::new(n),
            coalition: coalition.clone(),
            cache: PhaseTrialCache::ring(n),
        }),
        AttackKind::WakeupIdLie => Box::new(WakeupIdLieRunner {
            base: WakeLead::new(n),
            coalition: coalition.clone(),
            cache: WakeTrialCache::ring(n),
        }),
        AttackKind::WakeupMask => Box::new(WakeupMaskRunner {
            base: WakeLead::new(n),
            coalition: coalition.clone(),
            cache: WakeTrialCache::ring(n),
        }),
    })
}

fn single_position(kind: AttackKind, coalition: &Coalition) -> Result<NodeId, AttackError> {
    if coalition.k() != 1 {
        return Err(AttackError::Infeasible(format!(
            "{} takes a single adversary; got a coalition of k={}",
            kind.name(),
            coalition.k()
        )));
    }
    Ok(coalition.positions()[0])
}

/// Memoizes one `PhaseAsyncLead` base per `fn_key` so a fixed-key sweep
/// builds the random function once per worker, while key-per-seed sweeps
/// still work (one rebuild per trial).
struct PhaseBase {
    n: usize,
    cached: Option<(u64, PhaseAsyncLead)>,
}

impl PhaseBase {
    fn new(n: usize) -> Self {
        Self { n, cached: None }
    }

    fn instance(&mut self, fn_key: u64, seed: u64) -> PhaseAsyncLead {
        let hit = matches!(&self.cached, Some((k, _)) if *k == fn_key);
        if !hit {
            self.cached = Some((fn_key, PhaseAsyncLead::new(self.n).with_fn_key(fn_key)));
        }
        let (_, base) = self.cached.as_ref().expect("cached base was just set");
        (*base).with_seed(seed)
    }
}

struct BasicSingleRunner {
    base: BasicLead,
    pos: NodeId,
    cache: BasicSingleCache,
}

impl AttackRunner for BasicSingleRunner {
    fn run_trial(
        &mut self,
        seed: u64,
        _fn_key: u64,
        target: u64,
    ) -> Result<AttackTrialResult<'_>, AttackError> {
        self.cache.set_trial_seed(seed);
        let p = self.base.clone().with_seed(seed);
        let exec = BasicSingleAttack::new(self.pos, target).run_in(&p, &mut self.cache)?;
        let success = exec.outcome.elected() == Some(target);
        Ok(AttackTrialResult { exec, success })
    }

    fn set_timed_net(&mut self, net: Option<&ring_sim::TimedNetConfig>) {
        self.cache.set_timed_net(net);
    }

    fn set_faults(&mut self, cfg: Option<&ring_sim::FaultConfig>) {
        self.cache.set_faults(cfg);
    }
}

struct RushingRunner {
    base: ALeadUni,
    coalition: Coalition,
    cache: RushingCache,
}

impl AttackRunner for RushingRunner {
    fn run_trial(
        &mut self,
        seed: u64,
        _fn_key: u64,
        target: u64,
    ) -> Result<AttackTrialResult<'_>, AttackError> {
        self.cache.set_trial_seed(seed);
        let p = self.base.clone().with_seed(seed);
        let exec = RushingAttack::new(target).run_in(&p, &self.coalition, &mut self.cache)?;
        let success = exec.outcome.elected() == Some(target);
        Ok(AttackTrialResult { exec, success })
    }

    fn set_timed_net(&mut self, net: Option<&ring_sim::TimedNetConfig>) {
        self.cache.set_timed_net(net);
    }

    fn set_faults(&mut self, cfg: Option<&ring_sim::FaultConfig>) {
        self.cache.set_faults(cfg);
    }
}

struct CubicRunner {
    base: ALeadUni,
    plan: CubicPlan,
    cache: ALeadTrialCache,
}

impl AttackRunner for CubicRunner {
    fn run_trial(
        &mut self,
        seed: u64,
        _fn_key: u64,
        target: u64,
    ) -> Result<AttackTrialResult<'_>, AttackError> {
        self.cache.set_trial_seed(seed);
        let p = self.base.clone().with_seed(seed);
        let exec = CubicAttack::new(target).run_in(&p, &self.plan, &mut self.cache)?;
        let success = exec.outcome.elected() == Some(target);
        Ok(AttackTrialResult { exec, success })
    }

    fn set_timed_net(&mut self, net: Option<&ring_sim::TimedNetConfig>) {
        self.cache.set_timed_net(net);
    }

    fn set_faults(&mut self, cfg: Option<&ring_sim::FaultConfig>) {
        self.cache.set_faults(cfg);
    }
}

struct RandomLocatedRunner {
    base: ALeadUni,
    coalition: Coalition,
    cache: ALeadTrialCache,
}

impl AttackRunner for RandomLocatedRunner {
    fn run_trial(
        &mut self,
        seed: u64,
        _fn_key: u64,
        target: u64,
    ) -> Result<AttackTrialResult<'_>, AttackError> {
        self.cache.set_trial_seed(seed);
        let p = self.base.clone().with_seed(seed);
        let attack = RandomLocatedAttack::new(target, RANDOM_LOCATED_WINDOW);
        let exec = attack.run_in(&p, &self.coalition, &mut self.cache)?;
        let success = exec.outcome.elected() == Some(target);
        Ok(AttackTrialResult { exec, success })
    }

    fn set_timed_net(&mut self, net: Option<&ring_sim::TimedNetConfig>) {
        self.cache.set_timed_net(net);
    }

    fn set_faults(&mut self, cfg: Option<&ring_sim::FaultConfig>) {
        self.cache.set_faults(cfg);
    }
}

struct PhaseRushingRunner {
    base: PhaseBase,
    coalition: Coalition,
    cache: PhaseRushingCache,
}

impl AttackRunner for PhaseRushingRunner {
    fn run_trial(
        &mut self,
        seed: u64,
        fn_key: u64,
        target: u64,
    ) -> Result<AttackTrialResult<'_>, AttackError> {
        self.cache.set_trial_seed(seed);
        let p = self.base.instance(fn_key, seed);
        let exec = PhaseRushingAttack::new(target).run_in(&p, &self.coalition, &mut self.cache)?;
        let success = exec.outcome.elected() == Some(target);
        Ok(AttackTrialResult { exec, success })
    }

    fn set_timed_net(&mut self, net: Option<&ring_sim::TimedNetConfig>) {
        self.cache.set_timed_net(net);
    }

    fn set_faults(&mut self, cfg: Option<&ring_sim::FaultConfig>) {
        self.cache.set_faults(cfg);
    }
}

struct PhaseGuessRunner {
    base: PhaseBase,
    pos: NodeId,
    cache: PhaseTrialCache,
}

impl AttackRunner for PhaseGuessRunner {
    fn run_trial(
        &mut self,
        seed: u64,
        fn_key: u64,
        _target: u64,
    ) -> Result<AttackTrialResult<'_>, AttackError> {
        self.cache.set_trial_seed(seed);
        let p = self.base.instance(fn_key, seed);
        let exec = PhaseGuessAttack::new(self.pos).run_in(&p, &mut self.cache)?;
        // The guessing adversary "wins" by surviving validation at all
        // (probability exactly 1/m) — any elected leader counts.
        let success = exec.outcome.elected().is_some();
        Ok(AttackTrialResult { exec, success })
    }

    fn set_timed_net(&mut self, net: Option<&ring_sim::TimedNetConfig>) {
        self.cache.set_timed_net(net);
    }

    fn set_faults(&mut self, cfg: Option<&ring_sim::FaultConfig>) {
        self.cache.set_faults(cfg);
    }
}

struct PhaseBurstRunner {
    base: PhaseBase,
    coalition: Coalition,
    cache: PhaseTrialCache,
}

impl AttackRunner for PhaseBurstRunner {
    fn run_trial(
        &mut self,
        seed: u64,
        fn_key: u64,
        target: u64,
    ) -> Result<AttackTrialResult<'_>, AttackError> {
        self.cache.set_trial_seed(seed);
        let p = self.base.instance(fn_key, seed);
        let exec = PhaseBurstAttack::new(target).run_in(&p, &self.coalition, &mut self.cache)?;
        let success = exec.outcome.elected() == Some(target);
        Ok(AttackTrialResult { exec, success })
    }

    fn set_timed_net(&mut self, net: Option<&ring_sim::TimedNetConfig>) {
        self.cache.set_timed_net(net);
    }

    fn set_faults(&mut self, cfg: Option<&ring_sim::FaultConfig>) {
        self.cache.set_faults(cfg);
    }
}

struct PhaseSumRunner {
    base: PhaseSumLead,
    coalition: Coalition,
    cache: PhaseTrialCache,
}

impl AttackRunner for PhaseSumRunner {
    fn run_trial(
        &mut self,
        seed: u64,
        _fn_key: u64,
        target: u64,
    ) -> Result<AttackTrialResult<'_>, AttackError> {
        self.cache.set_trial_seed(seed);
        let p = self.base.with_seed(seed);
        let exec = PhaseSumAttack::new(target).run_in(&p, &self.coalition, &mut self.cache)?;
        let success = exec.outcome.elected() == Some(target);
        Ok(AttackTrialResult { exec, success })
    }

    fn set_timed_net(&mut self, net: Option<&ring_sim::TimedNetConfig>) {
        self.cache.set_timed_net(net);
    }

    fn set_faults(&mut self, cfg: Option<&ring_sim::FaultConfig>) {
        self.cache.set_faults(cfg);
    }
}

struct WakeupIdLieRunner {
    base: WakeLead,
    coalition: Coalition,
    cache: WakeTrialCache,
}

impl AttackRunner for WakeupIdLieRunner {
    fn run_trial(
        &mut self,
        seed: u64,
        _fn_key: u64,
        _target: u64,
    ) -> Result<AttackTrialResult<'_>, AttackError> {
        self.cache.set_trial_seed(seed);
        let p = self.base.clone().with_seed(seed);
        let exec = WakeupIdLieAttack::new().run_in(&p, &self.coalition, &mut self.cache)?;
        // Success: a fabricated (ghost) id won the election.
        let success = exec
            .outcome
            .elected()
            .is_some_and(WakeupIdLieAttack::is_ghost);
        Ok(AttackTrialResult { exec, success })
    }

    fn set_timed_net(&mut self, net: Option<&ring_sim::TimedNetConfig>) {
        self.cache.set_timed_net(net);
    }

    fn set_faults(&mut self, cfg: Option<&ring_sim::FaultConfig>) {
        self.cache.set_faults(cfg);
    }
}

struct WakeupMaskRunner {
    base: WakeLead,
    coalition: Coalition,
    cache: WakeTrialCache,
}

impl AttackRunner for WakeupMaskRunner {
    fn run_trial(
        &mut self,
        seed: u64,
        _fn_key: u64,
        target: u64,
    ) -> Result<AttackTrialResult<'_>, AttackError> {
        self.cache.set_trial_seed(seed);
        let p = self.base.clone().with_seed(seed);
        // `target` is the coalition member index; success is electing that
        // member's fabricated id, which depends on the per-seed id draw.
        let attack = WakeupMaskAttack::new(target as usize);
        let target_id = attack.plan(&p, &self.coalition)?.target_id;
        let exec = attack.run_in(&p, &self.coalition, &mut self.cache)?;
        let success = exec.outcome.elected() == Some(target_id);
        Ok(AttackTrialResult { exec, success })
    }

    fn set_timed_net(&mut self, net: Option<&ring_sim::TimedNetConfig>) {
        self.cache.set_timed_net(net);
    }

    fn set_faults(&mut self, cfg: Option<&ring_sim::FaultConfig>) {
        self.cache.set_faults(cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_kind_parses_every_canonical_name() {
        for kind in AttackKind::ALL {
            assert_eq!(kind.name().parse::<AttackKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        let err = "rush".parse::<AttackKind>().unwrap_err();
        assert!(err.contains("unknown attack 'rush'"), "{err}");
        assert!(err.contains("wakeup_mask"), "{err}");
    }

    #[test]
    fn build_runner_rejects_bad_layouts() {
        let wrong_n = Coalition::equally_spaced(8, 2, 1).unwrap();
        assert!(build_runner(AttackKind::Rushing, 16, &wrong_n).is_err());

        let pair = Coalition::new(16, vec![3, 9]).unwrap();
        assert!(build_runner(AttackKind::BasicSingle, 16, &pair).is_err());
        assert!(build_runner(AttackKind::PhaseGuess, 16, &pair).is_err());

        let not_cubic = Coalition::equally_spaced(16, 8, 1).unwrap();
        let Err(err) = build_runner(AttackKind::Cubic, 16, &not_cubic) else {
            panic!("non-cubic layout must be rejected");
        };
        assert!(
            err.to_string().contains("Theorem 4.3 layout"),
            "unexpected error: {err}"
        );
        let cubic = cubic_distances(16).unwrap().coalition();
        assert!(build_runner(AttackKind::Cubic, 16, &cubic).is_ok());
    }

    #[test]
    fn rushing_runner_matches_direct_attack_runs() {
        let n = 16;
        let coalition = Coalition::equally_spaced(n, 7, 1).unwrap();
        let mut runner = build_runner(AttackKind::Rushing, n, &coalition).unwrap();
        for seed in 0..20u64 {
            let target = seed % n as u64;
            let p = ALeadUni::new(n).with_seed(seed);
            let direct = RushingAttack::new(target).run(&p, &coalition).unwrap();
            let cached = runner.run_trial(seed, 0, target).unwrap();
            assert_eq!(cached.exec.outcome, direct.outcome, "seed {seed}");
            assert_eq!(
                cached.success,
                direct.outcome.elected() == Some(target),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn phase_runner_matches_direct_attack_runs_across_fn_keys() {
        let n = 16;
        let coalition = Coalition::equally_spaced(n, 7, 1).unwrap();
        let mut runner = build_runner(AttackKind::PhaseRushing, n, &coalition).unwrap();
        for seed in 0..10u64 {
            let fn_key = seed / 2; // exercise both memo hits and misses
            let p = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(fn_key);
            let direct = PhaseRushingAttack::new(3).run(&p, &coalition).unwrap();
            let cached = runner.run_trial(seed, fn_key, 3).unwrap();
            assert_eq!(cached.exec.outcome, direct.outcome, "seed {seed}");
        }
    }

    #[test]
    fn wakeup_runners_score_ghost_and_member_targets() {
        let n = 12;
        let lone = Coalition::new(n, vec![4]).unwrap();
        let mut id_lie = build_runner(AttackKind::WakeupIdLie, n, &lone).unwrap();
        let r = id_lie.run_trial(5, 0, 0).unwrap();
        if let Some(id) = r.exec.outcome.elected() {
            assert_eq!(r.success, WakeupIdLieAttack::is_ghost(id));
        }

        let coalition = Coalition::equally_spaced(n, 5, 1).unwrap();
        let mut mask = build_runner(AttackKind::WakeupMask, n, &coalition).unwrap();
        let r = mask.run_trial(5, 0, 2).unwrap();
        let p = WakeLead::new(n).with_seed(5);
        let plan = WakeupMaskAttack::new(2).plan(&p, &coalition).unwrap();
        assert_eq!(r.success, r.exec.outcome.elected() == Some(plan.target_id));
        // Out-of-range member index is an infeasibility, not a panic.
        assert!(mask.run_trial(5, 0, 99).is_err());
    }
}
