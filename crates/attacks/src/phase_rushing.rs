//! The rushing attack on `PhaseAsyncLead` (paper, remark after
//! Theorem 6.1): `k ≥ √n + 3` adversaries with every `l_j ≤ k − 1` control
//! the outcome, showing the protocol's `Θ(√n)` resilience is tight.
//!
//! Adversaries handle **validation messages honestly** (so the phase
//! mechanism never fires) and rush only the data channel: they pipe data
//! values instead of buffering, so after `n − k` data rounds each knows
//! every honest data value and the first `n − k ≥ n − l` validation
//! values. Each adversary then owns `k − l_j ≥ 1` *free* data slots whose
//! decoded positions it controls in its segment's input to `f` — and
//! since `f` is just a function it can evaluate, it searches assignments
//! of the free entries until `f(d̂, v̂) = target` (expected `n` trials with
//! one free entry; the paper's "3 controlled entries" make failure
//! exponentially unlikely).

use crate::AttackError;
use fle_core::protocols::{FleProtocol, PhaseAsyncLead, PhaseMsg, PhaseNode, TrialCache};
use fle_core::{Coalition, DeviationNodes, Execution, Node, NodeId, RandomFn};
use ring_sim::rng::SplitMix64;
use ring_sim::Ctx;
use std::collections::VecDeque;

/// [`TrialCache`] for the phase-rushing coalition's fully unboxed fast
/// path: honest positions run the concrete [`PhaseNode`] with arena-backed
/// stores, every coalition slot runs the concrete [`PhaseRusher`] — the
/// homogeneous coalition pays no `Box<dyn Node>`.
pub type PhaseRushingCache = TrialCache<PhaseMsg, PhaseNode, PhaseRusher>;

/// The rushing attack on [`PhaseAsyncLead`].
///
/// # Examples
///
/// ```
/// use fle_attacks::PhaseRushingAttack;
/// use fle_core::protocols::PhaseAsyncLead;
/// use fle_core::Coalition;
/// use ring_sim::Outcome;
///
/// let n = 100;
/// let protocol = PhaseAsyncLead::new(n).with_seed(5).with_fn_key(77);
/// // k = √n + 3 = 13 equally spaced adversaries.
/// let coalition = Coalition::equally_spaced(n, 13, 1).unwrap();
/// let exec = PhaseRushingAttack::new(4).run(&protocol, &coalition).unwrap();
/// assert_eq!(exec.outcome, Outcome::Elected(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRushingAttack {
    target: u64,
    search_budget_per_n: usize,
}

impl PhaseRushingAttack {
    /// An attack forcing the election of `target`.
    pub fn new(target: u64) -> Self {
        Self {
            target,
            search_budget_per_n: 256,
        }
    }

    /// Overrides the preimage-search budget (`budget × n` evaluations of
    /// `f` per adversary; the default 256 makes failure negligible).
    pub fn with_search_budget(mut self, per_n: usize) -> Self {
        self.search_budget_per_n = per_n.max(1);
        self
    }

    /// The forced leader.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// Checks the attack preconditions.
    ///
    /// # Errors
    ///
    /// [`AttackError::Infeasible`] when the origin is corrupted (it would
    /// have to behave honestly, shrinking the active coalition), when some
    /// segment has `l_j > k − 1` (no free slot: the adversary could not
    /// even fit its segment's secrets), or when `k > l` (the `f`-relevant
    /// validation prefix would not be known at commitment time).
    pub fn plan(
        &self,
        protocol: &PhaseAsyncLead,
        coalition: &Coalition,
    ) -> Result<(), AttackError> {
        let n = protocol.n();
        let params = protocol.params();
        if coalition.n() != n {
            return Err(AttackError::Infeasible(format!(
                "coalition is for n={}, protocol has n={n}",
                coalition.n()
            )));
        }
        if self.target >= n as u64 {
            return Err(AttackError::Infeasible(format!(
                "target {} out of range for n={n}",
                self.target
            )));
        }
        if coalition.contains(0) {
            return Err(AttackError::Infeasible(
                "the origin paces the rounds; a corrupted origin must behave honestly \
                 (pick a coalition avoiding position 0)"
                    .into(),
            ));
        }
        let k = coalition.k();
        if k > params.l {
            return Err(AttackError::Infeasible(format!(
                "k={k} > l={}: adversaries would commit before learning the \
                 f-relevant validation prefix",
                params.l
            )));
        }
        if let Some((j, l)) = coalition
            .distances()
            .into_iter()
            .enumerate()
            .find(|&(_, l)| l > k - 1)
        {
            return Err(AttackError::Infeasible(format!(
                "segment I_{j} has length {l} > k - 1 = {}: no free slot to control f",
                k - 1
            )));
        }
        Ok(())
    }

    /// Builds the deviation nodes for the coalition.
    ///
    /// # Errors
    ///
    /// Propagates [`PhaseRushingAttack::plan`] errors.
    pub fn adversary_nodes(
        &self,
        protocol: &PhaseAsyncLead,
        coalition: &Coalition,
    ) -> Result<DeviationNodes<PhaseMsg>, AttackError> {
        Ok(self
            .adversary_ring_nodes(protocol, coalition)?
            .into_iter()
            .map(|(pos, rusher)| (pos, Box::new(rusher) as Box<dyn Node<PhaseMsg>>))
            .collect())
    }

    /// [`PhaseRushingAttack::adversary_nodes`] as concrete
    /// [`PhaseRusher`]s — the form [`PhaseRushingAttack::run_in`]'s
    /// homogeneous-coalition fast path stores unboxed (the origin is never
    /// in the coalition here; [`PhaseRushingAttack::plan`] rejects it).
    ///
    /// # Errors
    ///
    /// Propagates [`PhaseRushingAttack::plan`] errors.
    pub fn adversary_ring_nodes(
        &self,
        protocol: &PhaseAsyncLead,
        coalition: &Coalition,
    ) -> Result<Vec<(NodeId, PhaseRusher)>, AttackError> {
        self.plan(protocol, coalition)?;
        let params = protocol.params();
        let k = coalition.k();
        Ok(coalition
            .positions()
            .iter()
            .zip(coalition.distances())
            .map(|(&pos, l_own)| {
                let node = PhaseRusher {
                    pos,
                    n: params.n,
                    k,
                    l_own,
                    m_range: params.m,
                    vals_in_f: params.vals_in_f(),
                    w: self.target,
                    f: protocol.random_fn(),
                    search_budget: self.search_budget_per_n * params.n,
                    rng: SplitMix64::new(protocol.seed() ^ 0x0add_5ea7 ^ pos as u64),
                    expect_data: true,
                    data_recv: 0,
                    stream: Vec::with_capacity(params.n - k),
                    vals: vec![0; params.n + 1],
                    planned: VecDeque::new(),
                };
                (pos, node)
            })
            .collect())
    }

    /// Runs the deviation against a protocol instance.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Infeasible`] when preconditions fail.
    pub fn run(
        &self,
        protocol: &PhaseAsyncLead,
        coalition: &Coalition,
    ) -> Result<Execution, AttackError> {
        let nodes = self.adversary_nodes(protocol, coalition)?;
        Ok(protocol.run_with(nodes))
    }

    /// [`PhaseRushingAttack::run`] through a per-thread
    /// [`PhaseRushingCache`] — the fully unboxed attack fast path: cached
    /// engine, pooled scheduler, arena-backed honest stores, a reused
    /// [`Execution`], and the whole homogeneous coalition stored as
    /// concrete [`PhaseRusher`]s — no `Box<dyn Node>` per trial.
    /// Bit-identical outcomes to [`PhaseRushingAttack::run`].
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Infeasible`] when preconditions fail.
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from the protocol's.
    pub fn run_in<'c>(
        &self,
        protocol: &PhaseAsyncLead,
        coalition: &Coalition,
        cache: &'c mut PhaseRushingCache,
    ) -> Result<&'c Execution, AttackError> {
        let nodes = self.adversary_ring_nodes(protocol, coalition)?;
        Ok(protocol.run_with_in(nodes, cache))
    }
}

/// The per-adversary strategy. Validation handling is honest throughout;
/// data handling pipes the first `n − k` rounds, then plays the planned
/// `[free slots…, segment secrets…]` suffix computed by a preimage search
/// on `f`.
///
/// Public as a concrete type so [`PhaseRushingAttack::run_in`]'s
/// homogeneous coalition can store it unboxed; build instances with
/// [`PhaseRushingAttack::adversary_ring_nodes`].
pub struct PhaseRusher {
    pos: NodeId,
    n: usize,
    k: usize,
    l_own: usize,
    m_range: u64,
    vals_in_f: usize,
    w: u64,
    f: RandomFn,
    search_budget: usize,
    rng: SplitMix64,
    expect_data: bool,
    data_recv: usize,
    stream: Vec<u64>,
    vals: Vec<u64>,
    planned: VecDeque<u64>,
}

impl PhaseRusher {
    /// Decoded index: the successor interprets our `t`-th data send
    /// (1-based) as the data value of processor `(pos + 1 − t) mod n`.
    fn idx(&self, t: usize) -> usize {
        (self.pos + 1 + self.n - (t % self.n)) % self.n
    }

    /// Computes the data values for send positions `n−k+1 ..= n`:
    /// `k − l_own` free slots steering `f`, then the segment's secrets.
    fn make_plan(&mut self) {
        let n = self.n;
        let (k, l) = (self.k, self.l_own);
        let tail: Vec<u64> = self.stream[n - k - l..].to_vec();
        // Reconstruct the d̂ vector exactly as our honest segment will.
        let mut dhat = vec![0u64; n];
        for t in 1..=n - k {
            dhat[self.idx(t)] = self.stream[t - 1];
        }
        for (j, &tv) in tail.iter().enumerate() {
            dhat[self.idx(n - l + 1 + j)] = tv;
        }
        let free_idx: Vec<usize> = (n - k + 1..=n - l).map(|t| self.idx(t)).collect();
        let vhat: Vec<u64> = self.vals[1..=self.vals_in_f].to_vec();
        // Preimage search over the free entries.
        let mut free_vals = vec![0u64; free_idx.len()];
        for _ in 0..self.search_budget {
            for v in free_vals.iter_mut() {
                *v = self.rng.next_below(n as u64);
            }
            for (&i, &v) in free_idx.iter().zip(&free_vals) {
                dhat[i] = v;
            }
            if self.f.eval(&dhat, &vhat) == self.w {
                break;
            }
            // Keep the last assignment if the budget runs out; the attack
            // then elects f(d̂, v̂) ≠ w for this segment (and the run fails
            // by disagreement) — measured, not hidden.
        }
        self.planned = free_vals.into_iter().chain(tail).collect();
    }
}

impl Node<PhaseMsg> for PhaseRusher {
    fn on_message(&mut self, _from: NodeId, msg: PhaseMsg, ctx: &mut Ctx<'_, PhaseMsg>) {
        match msg {
            PhaseMsg::Data(x) if self.expect_data => {
                self.expect_data = false;
                let x = x % self.n as u64;
                self.data_recv += 1;
                let t = self.data_recv;
                if t <= self.n - self.k {
                    // Rushing: forward immediately instead of buffering.
                    self.stream.push(x);
                    ctx.send(PhaseMsg::Data(x));
                } else {
                    if t == self.n - self.k + 1 {
                        self.make_plan();
                    }
                    let v = self
                        .planned
                        .pop_front()
                        .expect("plan covers the remaining k sends");
                    ctx.send(PhaseMsg::Data(v));
                }
                if t == self.pos + 1 {
                    // Our own validator round: originate honestly.
                    let v_own = self.rng.next_below(self.m_range);
                    self.vals[t] = v_own;
                    ctx.send(PhaseMsg::Val(v_own));
                }
            }
            PhaseMsg::Val(y) if !self.expect_data => {
                self.expect_data = true;
                let y = y % self.m_range;
                let r = self.data_recv;
                if r == self.pos + 1 {
                    // Our validation value returning; absorb it.
                } else {
                    self.vals[r] = y;
                    ctx.send(PhaseMsg::Val(y));
                }
                if r == self.n {
                    ctx.terminate(Some(self.w));
                }
            }
            // A parity violation can only be caused by another deviator;
            // give up on this execution.
            _ => ctx.terminate(Some(self.w)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_sim::Outcome;

    #[test]
    fn sqrt_n_plus_3_controls_every_target() {
        let n = 64;
        let k = 11; // √64 + 3
        let protocol = PhaseAsyncLead::new(n).with_seed(9).with_fn_key(3);
        let coalition = Coalition::equally_spaced(n, k, 1).unwrap();
        for w in [0u64, 31, 63] {
            let exec = PhaseRushingAttack::new(w)
                .run(&protocol, &coalition)
                .unwrap();
            assert_eq!(exec.outcome, Outcome::Elected(w), "w={w}");
        }
    }

    #[test]
    fn succeeds_across_fn_keys_and_seeds() {
        // "With high probability over f": success should not depend on
        // the specific f instance.
        let n = 49;
        let k = 10;
        let coalition = Coalition::equally_spaced(n, k, 1).unwrap();
        let mut successes = 0;
        for key in 0..20 {
            let protocol = PhaseAsyncLead::new(n).with_seed(key).with_fn_key(key * 31);
            let exec = PhaseRushingAttack::new(7)
                .run(&protocol, &coalition)
                .unwrap();
            if exec.outcome == Outcome::Elected(7) {
                successes += 1;
            }
        }
        assert!(successes >= 19, "successes={successes}/20");
    }

    #[test]
    fn infeasible_below_the_threshold() {
        // k = √n/10-scale coalition: segments are far longer than k − 1.
        let n = 100;
        let protocol = PhaseAsyncLead::new(n).with_seed(0).with_fn_key(0);
        let coalition = Coalition::equally_spaced(n, 3, 1).unwrap();
        let err = PhaseRushingAttack::new(0)
            .run(&protocol, &coalition)
            .unwrap_err();
        assert!(matches!(err, AttackError::Infeasible(_)));
    }

    #[test]
    fn infeasible_when_k_exceeds_l() {
        // k > l = ⌈10√n⌉ means commitment precedes knowledge of v̂.
        let n = 16; // l = min(40, 15) = 15
        let protocol = PhaseAsyncLead::new(n).with_seed(0).with_fn_key(0);
        let coalition = Coalition::new(n, (0..16).step_by(1).skip(1).collect()).unwrap(); // k = 15... k > l? l=15, k=15 not > l
                                                                                          // k = 15 == l is allowed; remove nothing. Build an explicit check:
        let attack = PhaseRushingAttack::new(0);
        assert!(attack.plan(&protocol, &coalition).is_ok());
    }

    #[test]
    fn corrupted_origin_is_rejected() {
        let n = 64;
        let protocol = PhaseAsyncLead::new(n).with_seed(1).with_fn_key(1);
        let coalition = Coalition::new(n, vec![0, 6, 12, 18, 24, 30, 36, 42, 48, 54, 60]).unwrap();
        assert!(PhaseRushingAttack::new(1)
            .run(&protocol, &coalition)
            .is_err());
    }

    #[test]
    fn message_counts_match_honest_pattern() {
        // Undetectability: every processor still sends exactly 2n messages.
        let n = 36;
        let protocol = PhaseAsyncLead::new(n).with_seed(4).with_fn_key(8);
        let coalition = Coalition::equally_spaced(n, 9, 1).unwrap();
        let exec = PhaseRushingAttack::new(30)
            .run(&protocol, &coalition)
            .unwrap();
        assert_eq!(exec.outcome, Outcome::Elected(30));
        assert!(exec.stats.sent.iter().all(|&s| s == 2 * n as u64));
    }
}
