//! The randomized-coalition attack of Theorem C.1 on `A-LEADuni`.
//!
//! Adversaries are scattered Bernoulli(p) along the ring and know
//! **neither** their number `k` nor their distances `l_j`. Each one pipes
//! incoming messages while watching for *circularity*: since the silent
//! coalition removes its own values from circulation, the stream of
//! secrets repeats with period `n − k`, so the first `C` received values
//! reappear after exactly `n − k` messages. From the repeat position `T`
//! the adversary infers `k' = n − T + C`, and finishes exactly like the
//! rushing attack. With `p = √(8 ln n / n)` — i.e. `k = Θ(√(n log n))` —
//! all the estimates are correct with high probability and the coalition
//! controls the outcome.

use crate::AttackError;
use fle_core::protocols::{ALeadTrialCache, ALeadUni, FleProtocol};
use fle_core::{Coalition, DeviationNodes, Execution, Node, NodeId};
use ring_sim::Ctx;

/// The Theorem C.1 attack on [`ALeadUni`] with a randomly-located
/// coalition that does not know `k` or the `l_j`.
///
/// `window` is the paper's constant `C`: the prefix length used for
/// circularity detection. Larger windows reduce the false-detection
/// probability (`≈ n^{2−C}`) but require every segment to satisfy
/// `l_j ≤ k − C − 1`.
///
/// # Examples
///
/// ```
/// use fle_attacks::RandomLocatedAttack;
/// use fle_core::protocols::ALeadUni;
/// use fle_core::Coalition;
/// use ring_sim::Outcome;
///
/// let n = 64;
/// let protocol = ALeadUni::new(n).with_seed(21);
/// // A random coalition dense enough that every segment is short. The
/// // adversaries are NOT told k or their distances — they estimate both
/// // from the circularity of the stream.
/// let coalition = Coalition::random_bernoulli(n, 0.35, 3).unwrap();
/// let attack = RandomLocatedAttack::new(13, 3);
/// assert!(attack.layout_is_favourable(&coalition));
/// let exec = attack.run(&protocol, &coalition).unwrap();
/// assert_eq!(exec.outcome, Outcome::Elected(13));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomLocatedAttack {
    target: u64,
    window: usize,
}

impl RandomLocatedAttack {
    /// An attack forcing `target`, detecting circularity with a prefix of
    /// `window` values.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(target: u64, window: usize) -> Self {
        assert!(window > 0, "detection window must be positive");
        Self { target, window }
    }

    /// The forced leader.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// The detection window `C`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The success predicate of Theorem C.1 for a known layout: every
    /// active (non-origin) adversary must have `l_j ≤ k' − C − 1`, and the
    /// coalition must sit in the theorem's density regime
    /// `k' − C − 1 ≤ n − k'` (the replayed tail cannot be longer than the
    /// circulating honest stream; with `k' = Θ(√(n log n))` this always
    /// holds asymptotically). The adversaries themselves cannot evaluate
    /// this — the experiments use it to compare predicted and measured
    /// success.
    pub fn layout_is_favourable(&self, coalition: &Coalition) -> bool {
        let n = coalition.n();
        let active: Vec<NodeId> = coalition
            .positions()
            .iter()
            .copied()
            .filter(|&p| p != 0)
            .collect();
        let Ok(active) = Coalition::new(n, active) else {
            return false;
        };
        let k = active.k();
        if k < self.window + 2 || k - self.window - 1 > n - k {
            return false;
        }
        active.distances().into_iter().all(|l| l < k - self.window)
    }

    /// Builds the deviation nodes (origin behaves honestly if corrupted).
    ///
    /// # Errors
    ///
    /// [`AttackError::Infeasible`] for mismatched ring sizes or an
    /// out-of-range target. Layout unsuitability is **not** an error here:
    /// the adversaries cannot detect it in advance, so the execution simply
    /// fails — exactly the probabilistic behaviour Theorem C.1 quantifies.
    pub fn adversary_nodes(
        &self,
        protocol: &ALeadUni,
        coalition: &Coalition,
    ) -> Result<DeviationNodes<u64>, AttackError> {
        let n = protocol.n();
        if coalition.n() != n {
            return Err(AttackError::Infeasible(format!(
                "coalition is for n={}, protocol has n={n}",
                coalition.n()
            )));
        }
        if self.target >= n as u64 {
            return Err(AttackError::Infeasible(format!(
                "target {} out of range for n={n}",
                self.target
            )));
        }
        Ok(coalition
            .positions()
            .iter()
            .map(|&pos| {
                let node: Box<dyn Node<u64>> = if pos == 0 {
                    protocol.honest_node(0)
                } else {
                    Box::new(CircularityAdversary {
                        n: n as u64,
                        c: self.window,
                        w: self.target,
                        received: Vec::with_capacity(n),
                        done: false,
                    })
                };
                (pos, node)
            })
            .collect())
    }

    /// Runs the deviation against a protocol instance.
    ///
    /// # Errors
    ///
    /// Propagates [`RandomLocatedAttack::adversary_nodes`] errors.
    pub fn run(
        &self,
        protocol: &ALeadUni,
        coalition: &Coalition,
    ) -> Result<Execution, AttackError> {
        let nodes = self.adversary_nodes(protocol, coalition)?;
        Ok(protocol.run_with(nodes))
    }

    /// [`RandomLocatedAttack::run`] through a per-thread
    /// [`ALeadTrialCache`]: cached engine, pooled scheduler and a reused
    /// [`Execution`]. Bit-identical outcomes to
    /// [`RandomLocatedAttack::run`].
    ///
    /// # Errors
    ///
    /// Propagates [`RandomLocatedAttack::adversary_nodes`] errors.
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from the protocol's.
    pub fn run_in<'c>(
        &self,
        protocol: &ALeadUni,
        coalition: &Coalition,
        cache: &'c mut ALeadTrialCache,
    ) -> Result<&'c Execution, AttackError> {
        let nodes = self.adversary_nodes(protocol, coalition)?;
        Ok(protocol.run_with_in(nodes, cache))
    }
}

/// Appendix C's per-adversary strategy: forward while watching for the
/// first `T > C` with `m[1..C] = m[T−C+1..T]`; then estimate
/// `k' = n − T + C`, send the correcting value and replay the stored tail.
struct CircularityAdversary {
    n: u64,
    c: usize,
    w: u64,
    received: Vec<u64>,
    done: bool,
}

impl Node<u64> for CircularityAdversary {
    fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
        if self.done {
            return;
        }
        let m = msg % self.n;
        self.received.push(m);
        let t = self.received.len();
        let c = self.c;
        if t > c && self.received[t - c..] == self.received[..c] {
            self.done = true;
            // Step 1 forwards all T messages, including the one that
            // completed the circularity check.
            ctx.send(m);
            let n = self.n as usize;
            // k' = n − T + C; if the estimate is degenerate the attack is
            // lost — stop sending and let the execution fail.
            let Some(kp) = (n + c).checked_sub(t) else {
                return;
            };
            if kp < c + 2 || n - kp < kp - c - 1 {
                return;
            }
            let tail_len = kp - c - 1;
            let end = n - kp; // 0-based exclusive end of the first n−k' values
            let start = end - tail_len;
            let sum_all: u64 = self.received.iter().map(|&v| v % self.n).sum::<u64>() % self.n;
            let sum_tail: u64 = self.received[start..end].iter().sum::<u64>() % self.n;
            ctx.send((self.w + 2 * self.n - sum_all - sum_tail) % self.n);
            for i in start..end {
                let v = self.received[i];
                ctx.send(v);
            }
            ctx.terminate(Some(self.w));
        } else {
            ctx.send(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Places adversaries at equal distances (a favourable layout) but the
    /// adversaries still run the estimate-everything strategy.
    #[test]
    fn succeeds_on_favourable_layouts_without_knowing_k() {
        let n = 49;
        let protocol = ALeadUni::new(n).with_seed(17);
        let coalition = Coalition::equally_spaced(n, 12, 1).unwrap(); // l_j <= 4 <= k−C−1 = 8
        let attack = RandomLocatedAttack::new(5, 3);
        assert!(attack.layout_is_favourable(&coalition));
        let exec = attack.run(&protocol, &coalition).unwrap();
        assert_eq!(exec.outcome.elected(), Some(5));
    }

    #[test]
    fn fails_gracefully_on_sparse_layouts() {
        // Too few adversaries: the circularity never appears within the
        // messages available, the ring stalls and the outcome is FAIL —
        // not a biased election.
        let n = 36;
        let protocol = ALeadUni::new(n).with_seed(3);
        let coalition = Coalition::new(n, vec![5, 20]).unwrap();
        let attack = RandomLocatedAttack::new(0, 3);
        assert!(!attack.layout_is_favourable(&coalition));
        let exec = attack.run(&protocol, &coalition).unwrap();
        assert!(exec.outcome.is_fail());
    }

    #[test]
    fn random_coalitions_in_theorem_regime_succeed() {
        // Bernoulli(p) coalitions at a density inside Theorem C.1's regime
        // (k = Θ(√(n log n)) ≪ n/2): every favourable layout must yield
        // the target, up to the n^{2−C} false-circularity probability.
        let n = 64usize;
        let p = 0.35;
        let attack = RandomLocatedAttack::new(9, 3);
        let mut favourable = 0;
        let mut favourable_success = 0;
        for seed in 0..80 {
            let Some(coalition) = Coalition::random_bernoulli(n, p, seed) else {
                continue;
            };
            let protocol = ALeadUni::new(n).with_seed(1000 + seed);
            let exec = attack.run(&protocol, &coalition).unwrap();
            if attack.layout_is_favourable(&coalition) {
                favourable += 1;
                if exec.outcome.elected() == Some(9) {
                    favourable_success += 1;
                }
            }
        }
        assert!(favourable > 10, "favourable layouts: {favourable}");
        assert!(
            favourable_success as f64 >= 0.95 * favourable as f64,
            "{favourable_success}/{favourable}"
        );
    }

    #[test]
    fn origin_adversary_behaves_honestly() {
        let n = 49;
        let protocol = ALeadUni::new(n).with_seed(2);
        let mut positions = Coalition::equally_spaced(n, 12, 1)
            .unwrap()
            .positions()
            .to_vec();
        positions.push(0);
        let coalition = Coalition::new(n, positions).unwrap();
        let attack = RandomLocatedAttack::new(3, 3);
        let exec = attack.run(&protocol, &coalition).unwrap();
        assert_eq!(exec.outcome.elected(), Some(3));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = RandomLocatedAttack::new(0, 0);
    }
}
