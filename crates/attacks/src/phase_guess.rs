//! The single-guess deviation against `PhaseAsyncLead`'s validation
//! mechanism — the ablation that shows the validation-value range
//! `m = 2n²` is exactly the protocol's guessing resistance.
//!
//! The Section 6 resilience proof bounds the adversary's chance of
//! surviving with an *unvalidated* round by the probability of guessing
//! that round's value: `1/m`. This deviation isolates that mechanism:
//! one adversary substitutes a uniform guess for a single round's
//! validation value as it passes through. If the guess matches, nothing
//! ever diverges and the run succeeds; otherwise the round's validator
//! sees a foreign value and aborts. The measured survival rate is `1/m`
//! — negligible at the paper's `m = 2n²`, and large once `m` is shrunk
//! with [`PhaseAsyncLead::with_validation_range`] (the `ablate`
//! experiment's sweep).

use crate::AttackError;
use fle_core::protocols::{FleProtocol, PhaseAsyncLead, PhaseMsg, PhaseTrialCache};
use fle_core::{DeviationNodes, Execution, Node, NodeId};
use ring_sim::rng::SplitMix64;
use ring_sim::Ctx;

/// The single-guess validation deviation.
///
/// # Examples
///
/// ```
/// use fle_attacks::PhaseGuessAttack;
/// use fle_core::protocols::PhaseAsyncLead;
///
/// // At the paper's m = 2n² the guess never lands (over a few seeds).
/// let protocol = PhaseAsyncLead::new(12).with_seed(5).with_fn_key(2);
/// let exec = PhaseGuessAttack::new(6).run(&protocol).unwrap();
/// assert!(exec.outcome.is_fail());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseGuessAttack {
    position: NodeId,
}

impl PhaseGuessAttack {
    /// Places the guessing adversary at ring `position`.
    pub fn new(position: NodeId) -> Self {
        Self { position }
    }

    /// The adversary's ring position.
    pub fn position(&self) -> NodeId {
        self.position
    }

    /// Builds the deviation node: honest behaviour except that the first
    /// incoming validation value of a round validated by an *honest*
    /// processor is replaced by a uniform guess.
    ///
    /// # Errors
    ///
    /// [`AttackError::Infeasible`] if the position is out of range or is
    /// the origin (whose validation flow differs; pick `1 ≤ p < n`).
    pub fn adversary_nodes(
        &self,
        protocol: &PhaseAsyncLead,
    ) -> Result<DeviationNodes<PhaseMsg>, AttackError> {
        let n = protocol.n();
        if self.position == 0 || self.position >= n {
            return Err(AttackError::Infeasible(format!(
                "guessing adversary needs a normal position 1..{n}, got {}",
                self.position
            )));
        }
        let node = Guesser {
            inner: protocol.honest_node(self.position),
            m: protocol.params().m,
            rng: SplitMix64::new(0x6e55 ^ protocol.seed()).derive(self.position as u64),
            vals_seen: 0,
            // The first validation value processor p receives is round
            // 1's (validator: processor 0 = the origin... 0-indexed the
            // validator of round r is processor r − 1). Replace round 2's
            // value — its validator (processor 1) is honest whenever the
            // adversary sits at p ≥ 2; for p = 1 replace round 3 instead
            // (processor 2 validates it).
            replace_at: if self.position == 1 { 2 } else { 1 },
            done: false,
        };
        Ok(vec![(self.position, Box::new(node))])
    }

    /// Runs the deviation. The outcome is valid with probability exactly
    /// `1/m` (the guess landing), `FAIL` otherwise.
    ///
    /// # Errors
    ///
    /// Propagates [`PhaseGuessAttack::adversary_nodes`] errors.
    pub fn run(&self, protocol: &PhaseAsyncLead) -> Result<Execution, AttackError> {
        Ok(protocol.run_with(self.adversary_nodes(protocol)?))
    }

    /// [`PhaseGuessAttack::run`] through a per-thread [`PhaseTrialCache`]
    /// — the attack fast path with cached engine, pooled scheduler,
    /// arena-backed honest stores and a reused [`Execution`].
    /// Bit-identical outcomes to [`PhaseGuessAttack::run`].
    ///
    /// # Errors
    ///
    /// Propagates [`PhaseGuessAttack::adversary_nodes`] errors.
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from the protocol's.
    pub fn run_in<'c>(
        &self,
        protocol: &PhaseAsyncLead,
        cache: &'c mut PhaseTrialCache,
    ) -> Result<&'c Execution, AttackError> {
        let nodes = self.adversary_nodes(protocol)?;
        Ok(protocol.run_with_in(nodes, cache))
    }
}

/// Honest except for one substituted validation value.
struct Guesser {
    inner: Box<dyn Node<PhaseMsg>>,
    m: u64,
    rng: SplitMix64,
    vals_seen: usize,
    replace_at: usize,
    done: bool,
}

impl Node<PhaseMsg> for Guesser {
    fn on_wake(&mut self, ctx: &mut Ctx<'_, PhaseMsg>) {
        self.inner.on_wake(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: PhaseMsg, ctx: &mut Ctx<'_, PhaseMsg>) {
        let msg = match msg {
            PhaseMsg::Val(_) if !self.done && self.vals_seen == self.replace_at => {
                self.done = true;
                PhaseMsg::Val(self.rng.next_below(self.m))
            }
            other => {
                if matches!(other, PhaseMsg::Val(_)) {
                    self.vals_seen += 1;
                }
                other
            }
        };
        self.inner.on_message(from, msg, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Survival rate of the guess over `trials` seeds.
    fn survival_rate(n: usize, m: Option<u64>, trials: u64) -> f64 {
        let mut ok = 0u64;
        for seed in 0..trials {
            let mut p = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(seed ^ 9);
            if let Some(m) = m {
                p = p.with_validation_range(m);
            }
            let exec = PhaseGuessAttack::new(n / 2)
                .run(&p)
                .expect("valid position");
            if exec.outcome.elected().is_some() {
                ok += 1;
            }
        }
        ok as f64 / trials as f64
    }

    #[test]
    fn survival_tracks_one_over_m() {
        let trials = 400;
        let r2 = survival_rate(8, Some(2), trials);
        let r4 = survival_rate(8, Some(4), trials);
        let r16 = survival_rate(8, Some(16), trials);
        assert!((r2 - 0.5).abs() < 0.1, "m=2: {r2}");
        assert!((r4 - 0.25).abs() < 0.1, "m=4: {r4}");
        assert!((r16 - 1.0 / 16.0).abs() < 0.06, "m=16: {r16}");
    }

    #[test]
    fn paper_default_is_effectively_unguessable() {
        // m = 2n² = 128 at n = 8: expect ~0 survivals over 200 seeds.
        let rate = survival_rate(8, None, 200);
        assert!(rate < 0.05, "rate {rate}");
    }

    #[test]
    fn successful_guess_is_indistinguishable() {
        // With m = 1 every "guess" is trivially correct: the deviation is
        // a no-op and the run must succeed.
        let rate = survival_rate(8, Some(1), 50);
        assert_eq!(rate, 1.0);
    }

    #[test]
    fn origin_position_is_rejected() {
        let p = PhaseAsyncLead::new(8);
        assert!(PhaseGuessAttack::new(0).run(&p).is_err());
        assert!(PhaseGuessAttack::new(8).run(&p).is_err());
    }
}
