//! The cubic-style burst attack **adapted to** `PhaseAsyncLead` — the
//! attack the phase-validation mechanism is designed to defeat (paper
//! Section 6's motivation).
//!
//! The cubic attack's essence is desynchronization: bursting `k − 1`
//! extra data messages pushes information along the ring faster than the
//! honest round structure allows. In `PhaseAsyncLead` every data message
//! must be matched by a validation message carrying the current round's
//! value `v_r`. A bursting adversary has not seen the values of future
//! rounds, so it must *guess* them (probability `1/m = 1/(2n²)` each);
//! the round's validator detects the mismatch and aborts. This attack is
//! therefore expected to **fail** for every coalition — the experiments
//! measure its detection rate, reproducing the paper's claim that
//! `PhaseAsyncLead` closes the cubic loophole.

use crate::AttackError;
use fle_core::protocols::{FleProtocol, PhaseAsyncLead, PhaseMsg, PhaseTrialCache};
use fle_core::{Coalition, DeviationNodes, Execution, Node, NodeId};
use ring_sim::rng::SplitMix64;
use ring_sim::Ctx;

/// The (doomed) burst attack on [`PhaseAsyncLead`].
///
/// # Examples
///
/// ```
/// use fle_attacks::PhaseBurstAttack;
/// use fle_core::protocols::PhaseAsyncLead;
/// use fle_core::Coalition;
///
/// let n = 30;
/// let protocol = PhaseAsyncLead::new(n).with_seed(3).with_fn_key(1);
/// let coalition = Coalition::equally_spaced(n, 5, 1).unwrap();
/// let exec = PhaseBurstAttack::new(7).run(&protocol, &coalition).unwrap();
/// // The phase validation catches the desynchronization:
/// assert!(exec.outcome.is_fail());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseBurstAttack {
    target: u64,
}

impl PhaseBurstAttack {
    /// An attack attempting (and failing) to force `target`.
    pub fn new(target: u64) -> Self {
        Self { target }
    }

    /// The (unreachable) target leader.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// Builds the deviation nodes.
    ///
    /// # Errors
    ///
    /// [`AttackError::Infeasible`] on ring-size mismatch, an out-of-range
    /// target, or a corrupted origin (which must behave honestly and
    /// contributes nothing to the burst).
    pub fn adversary_nodes(
        &self,
        protocol: &PhaseAsyncLead,
        coalition: &Coalition,
    ) -> Result<DeviationNodes<PhaseMsg>, AttackError> {
        let n = protocol.n();
        if coalition.n() != n {
            return Err(AttackError::Infeasible(format!(
                "coalition is for n={}, protocol has n={n}",
                coalition.n()
            )));
        }
        if self.target >= n as u64 {
            return Err(AttackError::Infeasible(format!(
                "target {} out of range for n={n}",
                self.target
            )));
        }
        if coalition.contains(0) {
            return Err(AttackError::Infeasible(
                "corrupted origin must behave honestly; pick positions >= 1".into(),
            ));
        }
        let params = protocol.params();
        let k = coalition.k();
        Ok(coalition
            .positions()
            .iter()
            .zip(coalition.distances())
            .map(|(&pos, l_own)| {
                let node: Box<dyn Node<PhaseMsg>> = Box::new(Burster {
                    n,
                    k,
                    l_own,
                    m_range: params.m,
                    w: self.target,
                    rng: SplitMix64::new(0xb17b_0057 ^ pos as u64),
                    data_recv: 0,
                    sum: 0,
                    stored: Vec::with_capacity(n),
                });
                (pos, node)
            })
            .collect())
    }

    /// Runs the deviation against a protocol instance.
    ///
    /// # Errors
    ///
    /// Propagates [`PhaseBurstAttack::adversary_nodes`] errors.
    pub fn run(
        &self,
        protocol: &PhaseAsyncLead,
        coalition: &Coalition,
    ) -> Result<Execution, AttackError> {
        let nodes = self.adversary_nodes(protocol, coalition)?;
        Ok(protocol.run_with(nodes))
    }

    /// [`PhaseBurstAttack::run`] through a per-thread [`PhaseTrialCache`]:
    /// cached engine, pooled scheduler, arena-backed honest stores and a
    /// reused [`Execution`]. Bit-identical outcomes to
    /// [`PhaseBurstAttack::run`].
    ///
    /// # Errors
    ///
    /// Propagates [`PhaseBurstAttack::adversary_nodes`] errors.
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from the protocol's.
    pub fn run_in<'c>(
        &self,
        protocol: &PhaseAsyncLead,
        coalition: &Coalition,
        cache: &'c mut PhaseTrialCache,
    ) -> Result<&'c Execution, AttackError> {
        let nodes = self.adversary_nodes(protocol, coalition)?;
        Ok(protocol.run_with_in(nodes, cache))
    }
}

/// A cubic adversary transplanted into the phase protocol: pipes both
/// channels, then bursts `k − 1` data messages padded with *guessed*
/// validation values for rounds it has not seen.
struct Burster {
    n: usize,
    k: usize,
    l_own: usize,
    m_range: u64,
    w: u64,
    rng: SplitMix64,
    data_recv: usize,
    sum: u64,
    stored: Vec<u64>,
}

impl Node<PhaseMsg> for Burster {
    fn on_message(&mut self, _from: NodeId, msg: PhaseMsg, ctx: &mut Ctx<'_, PhaseMsg>) {
        let pipe_until = self.n.saturating_sub(self.k + self.l_own);
        match msg {
            PhaseMsg::Data(x) => {
                let x = x % self.n as u64;
                self.data_recv += 1;
                let t = self.data_recv;
                if t <= self.n - self.k {
                    self.stored.push(x);
                    self.sum = (self.sum + x) % self.n as u64;
                }
                if t <= pipe_until {
                    ctx.send(PhaseMsg::Data(x));
                }
                if t == pipe_until {
                    // The cubic burst: k − 1 rushed data messages, each
                    // padded with a guessed validation value.
                    for _ in 0..self.k.saturating_sub(1) {
                        ctx.send(PhaseMsg::Data(0));
                        ctx.send(PhaseMsg::Val(self.rng.next_below(self.m_range)));
                    }
                }
                if t == self.n - self.k {
                    let correcting = (self.w + self.n as u64 - self.sum) % self.n as u64;
                    ctx.send(PhaseMsg::Data(correcting));
                    ctx.send(PhaseMsg::Val(self.rng.next_below(self.m_range)));
                    let from = self.n - self.k - self.l_own;
                    for i in from..self.stored.len() {
                        let v = self.stored[i];
                        ctx.send(PhaseMsg::Data(v));
                        ctx.send(PhaseMsg::Val(self.rng.next_below(self.m_range)));
                    }
                    ctx.terminate(Some(self.w));
                }
            }
            PhaseMsg::Val(y) => {
                // Forward validations only while piping; the burst already
                // emitted (guessed) substitutes for the rest.
                if self.data_recv < pipe_until {
                    ctx.send(PhaseMsg::Val(y));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_attack_always_fails() {
        for n in [16, 30, 64] {
            for seed in 0..5 {
                let protocol = PhaseAsyncLead::new(n).with_seed(seed).with_fn_key(seed);
                let k = (2.0 * (n as f64).cbrt()).ceil() as usize + 1;
                let coalition = Coalition::equally_spaced(n, k, 1).unwrap();
                let exec = PhaseBurstAttack::new(1).run(&protocol, &coalition).unwrap();
                assert!(
                    exec.outcome.is_fail(),
                    "n={n} seed={seed}: burst attack must be detected, got {:?}",
                    exec.outcome
                );
            }
        }
    }

    #[test]
    fn same_burst_succeeds_against_a_lead_uni() {
        // Control experiment: the identical desynchronization pattern is
        // exactly what the cubic attack exploits on A-LEADuni, so the
        // failure above is due to the phase mechanism, not the pattern.
        use crate::cubic::{cubic_distances, CubicAttack};
        use fle_core::protocols::ALeadUni;
        let n = 30;
        let plan = cubic_distances(n).unwrap();
        let protocol = ALeadUni::new(n).with_seed(3);
        let exec = CubicAttack::new(1).run(&protocol, &plan).unwrap();
        assert_eq!(exec.outcome.elected(), Some(1));
    }

    #[test]
    fn rejects_corrupted_origin() {
        let protocol = PhaseAsyncLead::new(12).with_seed(0).with_fn_key(0);
        let coalition = Coalition::new(12, vec![0, 4, 8]).unwrap();
        assert!(PhaseBurstAttack::new(0).run(&protocol, &coalition).is_err());
    }
}
