//! The rushing attack of Lemma 4.1 / Theorem 4.2 on `A-LEADuni`.
//!
//! Adversaries never select a secret of their own and forward every
//! incoming message immediately instead of buffering it. After `n − k`
//! receives each adversary has seen **all** honest secrets; it then spends
//! its `k` spare messages on a correcting value `M`, padding zeros, and
//! the replayed secrets of its own honest segment, steering every
//! segment's sum to the target.
//!
//! Feasible exactly when every honest segment satisfies `l_j ≤ k − 1`
//! (Lemma 4.1) — equally-spaced coalitions of `k ≥ √n` qualify
//! (Theorem 4.2), consecutive coalitions only from `k ≥ ⌈(n+1)/2⌉`
//! (the Claim D.1 crossover).

use crate::AttackError;
use fle_core::protocols::{ALeadNode, ALeadUni, FleProtocol, TrialCache};
use fle_core::{Coalition, DeviationNodes, Execution, Node, NodeId};
use ring_sim::Ctx;

/// [`TrialCache`] for the rushing coalition's fully unboxed fast path:
/// honest positions run the concrete [`ALeadNode`], every coalition slot
/// runs the concrete [`Rusher`] — a homogeneous coalition needs no
/// `Box<dyn Node>` anywhere in the mix.
pub type RushingCache = TrialCache<u64, ALeadNode, Rusher>;

/// The Lemma 4.1 rushing attack on [`ALeadUni`].
///
/// If the origin (processor 0) is in the coalition it simply behaves
/// honestly, as in the paper's randomized attack; the layout precondition
/// is then evaluated on the remaining, actively-deviating coalition.
///
/// # Examples
///
/// ```
/// use fle_attacks::RushingAttack;
/// use fle_core::protocols::ALeadUni;
/// use fle_core::Coalition;
/// use ring_sim::Outcome;
///
/// let n = 36;
/// let protocol = ALeadUni::new(n).with_seed(1);
/// let coalition = Coalition::equally_spaced(n, 6, 1).unwrap(); // k = √n
/// let exec = RushingAttack::new(17).run(&protocol, &coalition).unwrap();
/// assert_eq!(exec.outcome, Outcome::Elected(17));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RushingAttack {
    target: u64,
}

impl RushingAttack {
    /// An attack forcing the election of `target`.
    pub fn new(target: u64) -> Self {
        Self { target }
    }

    /// The forced leader.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// Checks the Lemma 4.1 precondition and returns the *active*
    /// coalition (the input minus an honestly-behaving origin).
    ///
    /// # Errors
    ///
    /// [`AttackError::Infeasible`] when the target is out of range, no
    /// active adversary remains, or some segment has `l_j > k − 1`.
    pub fn plan(
        &self,
        protocol: &ALeadUni,
        coalition: &Coalition,
    ) -> Result<Coalition, AttackError> {
        let n = protocol.n();
        if coalition.n() != n {
            return Err(AttackError::Infeasible(format!(
                "coalition is for a ring of {} but the protocol has n={n}",
                coalition.n()
            )));
        }
        if self.target >= n as u64 {
            return Err(AttackError::Infeasible(format!(
                "target {} out of range for n={n}",
                self.target
            )));
        }
        let active: Vec<NodeId> = coalition
            .positions()
            .iter()
            .copied()
            .filter(|&p| p != 0)
            .collect();
        if active.is_empty() {
            return Err(AttackError::Infeasible(
                "only the origin is corrupted and it must behave honestly".into(),
            ));
        }
        let active = Coalition::new(n, active).expect("subset of a valid coalition");
        let k = active.k();
        if let Some((j, l)) = active
            .distances()
            .into_iter()
            .enumerate()
            .find(|&(_, l)| l > k - 1)
        {
            return Err(AttackError::Infeasible(format!(
                "segment I_{j} has length {l} > k - 1 = {} (Lemma 4.1 requires l_j <= k - 1)",
                k - 1
            )));
        }
        Ok(active)
    }

    /// Builds the deviation nodes for the coalition.
    ///
    /// # Errors
    ///
    /// Propagates [`RushingAttack::plan`] errors.
    pub fn adversary_nodes(
        &self,
        protocol: &ALeadUni,
        coalition: &Coalition,
    ) -> Result<DeviationNodes<u64>, AttackError> {
        let mut nodes: Vec<(NodeId, Box<dyn Node<u64>>)> = Vec::with_capacity(coalition.k());
        if coalition.contains(0) {
            nodes.push((0, protocol.honest_node(0)));
        }
        for (pos, rusher) in self.adversary_ring_nodes(protocol, coalition)? {
            nodes.push((pos, Box::new(rusher)));
        }
        Ok(nodes)
    }

    /// [`RushingAttack::adversary_nodes`] as concrete [`Rusher`]s — the
    /// form [`RushingAttack::run_in`]'s homogeneous-coalition fast path
    /// stores unboxed. A corrupted origin behaves honestly, so it is
    /// simply *omitted* here: the cache's honest builder supplies the
    /// identical [`ALeadNode`] for position 0 (bit-identical executions
    /// either way).
    ///
    /// # Errors
    ///
    /// Propagates [`RushingAttack::plan`] errors.
    pub fn adversary_ring_nodes(
        &self,
        protocol: &ALeadUni,
        coalition: &Coalition,
    ) -> Result<Vec<(NodeId, Rusher)>, AttackError> {
        let active = self.plan(protocol, coalition)?;
        let n = protocol.n();
        let k = active.k();
        Ok(active
            .positions()
            .iter()
            .enumerate()
            .map(|(idx, &pos)| {
                let l = active.distances()[idx];
                (
                    pos,
                    Rusher {
                        n: n as u64,
                        k: k as u64,
                        l: l as u64,
                        w: self.target,
                        count: 0,
                        sum: 0,
                        tail: Vec::with_capacity(l),
                    },
                )
            })
            .collect())
    }

    /// Runs the deviation against a protocol instance.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Infeasible`] when the layout precondition
    /// fails — the boundary the experiments probe.
    pub fn run(
        &self,
        protocol: &ALeadUni,
        coalition: &Coalition,
    ) -> Result<Execution, AttackError> {
        let nodes = self.adversary_nodes(protocol, coalition)?;
        Ok(protocol.run_with(nodes))
    }

    /// [`RushingAttack::run`] through a per-thread [`RushingCache`] — the
    /// fully unboxed attack fast path: cached engine, pooled scheduler, a
    /// reused [`Execution`], honest positions on the concrete
    /// [`ALeadNode`] and the whole homogeneous coalition on the concrete
    /// [`Rusher`] — no `Box<dyn Node>` anywhere. Bit-identical outcomes to
    /// [`RushingAttack::run`].
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Infeasible`] when the layout precondition
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from the protocol's.
    pub fn run_in<'c>(
        &self,
        protocol: &ALeadUni,
        coalition: &Coalition,
        cache: &'c mut RushingCache,
    ) -> Result<&'c Execution, AttackError> {
        let nodes = self.adversary_ring_nodes(protocol, coalition)?;
        Ok(protocol.run_with_in(nodes, cache))
    }
}

/// The rushing adversary: pipes the first `n − k` messages (learning every
/// honest secret), then spends its `k` spare sends on
/// `[M, 0 × (k−1−l), secrets of its segment]`, making its outgoing sum `w`
/// while satisfying every condition of Lemma 3.3.
///
/// Public as a concrete type so [`RushingAttack::run_in`]'s homogeneous
/// coalition can store it unboxed; build instances with
/// [`RushingAttack::adversary_ring_nodes`].
pub struct Rusher {
    n: u64,
    k: u64,
    l: u64,
    w: u64,
    count: u64,
    sum: u64,
    tail: Vec<u64>,
}

impl Node<u64> for Rusher {
    fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
        let m = msg % self.n;
        self.count += 1;
        if self.count > self.n - self.k {
            // Learning is over; surplus deliveries are ignored (we have
            // already terminated in the burst below, so the engine drops
            // them anyway).
            return;
        }
        self.sum = (self.sum + m) % self.n;
        if self.count > self.n - self.k - self.l {
            self.tail.push(m);
        }
        ctx.send(m);
        if self.count == self.n - self.k {
            // All n − k honest secrets observed; the last l of them are
            // exactly the secrets of our honest segment, in the order the
            // validations demand (Lemma 4.5).
            let tail_sum = self.tail.iter().sum::<u64>() % self.n;
            let correcting = (self.w + 2 * self.n - self.sum - tail_sum) % self.n;
            ctx.send(correcting);
            for _ in 0..(self.k - 1 - self.l) {
                ctx.send(0);
            }
            for i in 0..self.tail.len() {
                let v = self.tail[i];
                ctx.send(v);
            }
            ctx.terminate(Some(self.w));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_sim::Outcome;

    #[test]
    fn equally_spaced_sqrt_n_controls_every_target() {
        let n = 25;
        let protocol = ALeadUni::new(n).with_seed(3);
        let coalition = Coalition::equally_spaced(n, 5, 1).unwrap();
        for w in [0u64, 1, 7, 24] {
            let exec = RushingAttack::new(w).run(&protocol, &coalition).unwrap();
            assert_eq!(exec.outcome, Outcome::Elected(w), "target {w}");
        }
    }

    #[test]
    fn every_adversary_sends_exactly_n() {
        let n = 16;
        let protocol = ALeadUni::new(n).with_seed(9);
        let coalition = Coalition::equally_spaced(n, 4, 1).unwrap();
        let exec = RushingAttack::new(2).run(&protocol, &coalition).unwrap();
        assert_eq!(exec.outcome, Outcome::Elected(2));
        assert!(exec.stats.sent.iter().all(|&s| s == n as u64));
    }

    #[test]
    fn infeasible_when_a_segment_is_too_long() {
        let n = 36;
        let protocol = ALeadUni::new(n).with_seed(0);
        // k = 4 < √n: equal spacing gives l_j = 8 > k − 1 = 3.
        let coalition = Coalition::equally_spaced(n, 4, 1).unwrap();
        let err = RushingAttack::new(0)
            .run(&protocol, &coalition)
            .unwrap_err();
        assert!(matches!(err, AttackError::Infeasible(_)));
    }

    #[test]
    fn consecutive_coalition_crossover_at_half_n() {
        // Claim D.1: consecutive coalitions are harmless below ⌈(n+1)/2⌉
        // and fully controlling at/above it.
        let n = 17;
        let protocol = ALeadUni::new(n).with_seed(5);
        let below = Coalition::consecutive(n, 8, 1).unwrap(); // l = 9 > 7
        assert!(RushingAttack::new(3).run(&protocol, &below).is_err());
        let above = Coalition::consecutive(n, 9, 1).unwrap(); // l = 8 = k − 1
        let exec = RushingAttack::new(3).run(&protocol, &above).unwrap();
        assert_eq!(exec.outcome, Outcome::Elected(3));
    }

    #[test]
    fn origin_in_coalition_behaves_honestly() {
        let n = 25;
        let protocol = ALeadUni::new(n).with_seed(2);
        // Coalition includes 0; active coalition is the other 5, equally
        // spaced with l_j <= 4.
        let mut positions = vec![0];
        positions.extend(
            Coalition::equally_spaced(n, 5, 2)
                .unwrap()
                .positions()
                .to_vec(),
        );
        let coalition = Coalition::new(n, positions).unwrap();
        let exec = RushingAttack::new(11).run(&protocol, &coalition).unwrap();
        assert_eq!(exec.outcome, Outcome::Elected(11));
    }

    #[test]
    fn origin_only_coalition_is_infeasible() {
        let protocol = ALeadUni::new(8).with_seed(0);
        let coalition = Coalition::new(8, vec![0]).unwrap();
        assert!(RushingAttack::new(1).run(&protocol, &coalition).is_err());
    }

    #[test]
    fn adjacent_adversaries_act_as_pipes() {
        // Coalition with an l_j = 0 pair still succeeds.
        let n = 12;
        let protocol = ALeadUni::new(n).with_seed(7);
        let coalition = Coalition::new(n, vec![1, 2, 5, 8, 11]).unwrap();
        // distances: 1->2:0, 2->5:2, 5->8:2, 8->11:2, 11->1:1; all <= k-1=4.
        let exec = RushingAttack::new(6).run(&protocol, &coalition).unwrap();
        assert_eq!(exec.outcome, Outcome::Elected(6));
    }

    #[test]
    fn rejects_out_of_range_target() {
        let protocol = ALeadUni::new(9).with_seed(0);
        let coalition = Coalition::equally_spaced(9, 3, 1).unwrap();
        assert!(RushingAttack::new(9).run(&protocol, &coalition).is_err());
    }
}
