//! The Appendix E.4 attack: four adversaries defeat phase validation when
//! the output is a **sum** instead of a random function.
//!
//! With long honest segments an adversary commits to its correcting value
//! before its own segment's secrets arrive on the data channel — but the
//! *validation channel* moves without delay, and in rounds whose validator
//! is a coalition member nobody checks the circulating value. The
//! coalition abuses exactly two such rounds:
//!
//! 1. **Accumulate** (round `r₁`, validator = second adversary): the
//!    validator originates the sum of the segment behind it; every other
//!    adversary adds its own behind-segment sum while forwarding. After a
//!    full circle the total honest sum `S` is known to two adversaries.
//! 2. **Broadcast** (round `r₂`, validator = third adversary): the second
//!    adversary *pre-sends* `S` as the round's validation value right
//!    after its data send (the validator can't object — it's in the
//!    coalition and simply treats the early value as its own origination);
//!    every adversary downstream copies `S`.
//!
//! Every adversary then knows `S` before its commitment point and steers
//! its segment's sum to the target exactly as in the rushing attack.
//! This is the experiment that motivates `PhaseAsyncLead`'s random `f`:
//! partial sums of the input are useful, partial images of a random
//! function are not.

use crate::AttackError;
use fle_core::protocols::{FleProtocol, PhaseMsg, PhaseSumLead, PhaseTrialCache};
use fle_core::{Coalition, DeviationNodes, Execution, Node, NodeId};
use ring_sim::rng::SplitMix64;
use ring_sim::Ctx;

/// The Appendix E.4 attack on [`PhaseSumLead`] with `k ≥ 4` adversaries.
///
/// # Examples
///
/// ```
/// use fle_attacks::PhaseSumAttack;
/// use fle_core::protocols::PhaseSumLead;
/// use fle_core::Coalition;
/// use ring_sim::Outcome;
///
/// let n = 64;
/// let protocol = PhaseSumLead::new(n).with_seed(6);
/// let coalition = Coalition::equally_spaced(n, 4, 1).unwrap();
/// let exec = PhaseSumAttack::new(10).run(&protocol, &coalition).unwrap();
/// assert_eq!(exec.outcome, Outcome::Elected(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSumAttack {
    target: u64,
}

/// Per-adversary role in the two validation-channel phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Roles {
    /// Originates the accumulation in round `r₁` (the paper's `a₂`).
    is_accumulator: bool,
    /// The adversary immediately before the accumulator in ring order
    /// (the paper's `a₁`): its addition completes the sum.
    is_last_adder: bool,
    /// Validator of round `r₂` (the paper's `a₃`): delays its origination
    /// and replays the pre-sent `S`.
    is_broadcast_validator: bool,
}

impl PhaseSumAttack {
    /// An attack forcing the election of `target`.
    pub fn new(target: u64) -> Self {
        Self { target }
    }

    /// The forced leader.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// Checks the attack preconditions.
    ///
    /// # Errors
    ///
    /// [`AttackError::Infeasible`] when `k < 4`, the origin is corrupted,
    /// some adversaries are adjacent, or the broadcast round would come
    /// after some adversary's commitment point (`r₂ > n − k − l_j`).
    pub fn plan(&self, protocol: &PhaseSumLead, coalition: &Coalition) -> Result<(), AttackError> {
        let n = protocol.n();
        if coalition.n() != n {
            return Err(AttackError::Infeasible(format!(
                "coalition is for n={}, protocol has n={n}",
                coalition.n()
            )));
        }
        if self.target >= n as u64 {
            return Err(AttackError::Infeasible(format!(
                "target {} out of range for n={n}",
                self.target
            )));
        }
        if coalition.contains(0) {
            return Err(AttackError::Infeasible(
                "corrupted origin must behave honestly; pick positions >= 1".into(),
            ));
        }
        let k = coalition.k();
        if k < 4 {
            return Err(AttackError::Infeasible(format!(
                "the partial-sum relay needs k >= 4 (paper E.4), got k={k}"
            )));
        }
        if coalition.distances().contains(&0) {
            return Err(AttackError::Infeasible(
                "adjacent adversaries not supported by the relay bookkeeping".into(),
            ));
        }
        let r2 = coalition.positions()[2] + 1;
        for (j, &l) in coalition.distances().iter().enumerate() {
            if r2 > n - k - l {
                return Err(AttackError::Infeasible(format!(
                    "broadcast round r2={r2} is after adversary {j}'s commitment \
                     point {} (segments too long / too unbalanced)",
                    n - k - l
                )));
            }
        }
        Ok(())
    }

    /// Builds the deviation nodes for the coalition.
    ///
    /// # Errors
    ///
    /// Propagates [`PhaseSumAttack::plan`] errors.
    pub fn adversary_nodes(
        &self,
        protocol: &PhaseSumLead,
        coalition: &Coalition,
    ) -> Result<DeviationNodes<PhaseMsg>, AttackError> {
        self.plan(protocol, coalition)?;
        let params = protocol.params();
        let n = params.n;
        let k = coalition.k();
        let positions = coalition.positions();
        let distances = coalition.distances();
        let r1 = positions[1] + 1;
        let r2 = positions[2] + 1;
        Ok((0..k)
            .map(|j| {
                let pos = positions[j];
                // The honest segment *behind* adversary j is segment j−1.
                let l_behind = distances[(j + k - 1) % k];
                let roles = Roles {
                    is_accumulator: j == 1,
                    is_last_adder: j == 0,
                    is_broadcast_validator: j == 2,
                };
                let node: Box<dyn Node<PhaseMsg>> = Box::new(SumRelayAdversary {
                    pos,
                    n,
                    k,
                    m_range: params.m,
                    w: self.target,
                    l_own: distances[j],
                    l_behind,
                    r1,
                    r2,
                    roles,
                    rng: SplitMix64::new(0x5e4_a77ac ^ pos as u64),
                    expect_data: true,
                    data_recv: 0,
                    stream: Vec::with_capacity(n - k),
                    behind_sum: 0,
                    s_total: None,
                });
                (pos, node)
            })
            .collect())
    }

    /// Runs the deviation against a protocol instance.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Infeasible`] when preconditions fail.
    pub fn run(
        &self,
        protocol: &PhaseSumLead,
        coalition: &Coalition,
    ) -> Result<Execution, AttackError> {
        let nodes = self.adversary_nodes(protocol, coalition)?;
        Ok(protocol.run_with(nodes))
    }

    /// [`PhaseSumAttack::run`] through a per-thread [`PhaseTrialCache`]:
    /// cached engine, pooled scheduler, arena-backed honest stores and a
    /// reused [`Execution`]. Bit-identical outcomes to
    /// [`PhaseSumAttack::run`].
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Infeasible`] when preconditions fail.
    ///
    /// # Panics
    ///
    /// Panics if the cache's ring size differs from the protocol's.
    pub fn run_in<'c>(
        &self,
        protocol: &PhaseSumLead,
        coalition: &Coalition,
        cache: &'c mut PhaseTrialCache,
    ) -> Result<&'c Execution, AttackError> {
        let nodes = self.adversary_nodes(protocol, coalition)?;
        Ok(protocol.run_with_in(nodes, cache))
    }
}

/// The per-adversary strategy: rush the data channel, relay partial sums
/// through the two coalition-validated rounds, and steer the segment sum.
struct SumRelayAdversary {
    pos: NodeId,
    n: usize,
    k: usize,
    m_range: u64,
    w: u64,
    l_own: usize,
    l_behind: usize,
    r1: usize,
    r2: usize,
    roles: Roles,
    rng: SplitMix64,
    expect_data: bool,
    data_recv: usize,
    stream: Vec<u64>,
    behind_sum: u64,
    s_total: Option<u64>,
}

impl Node<PhaseMsg> for SumRelayAdversary {
    fn on_message(&mut self, _from: NodeId, msg: PhaseMsg, ctx: &mut Ctx<'_, PhaseMsg>) {
        let n = self.n as u64;
        match msg {
            PhaseMsg::Data(x) if self.expect_data => {
                self.expect_data = false;
                let x = x % n;
                self.data_recv += 1;
                let t = self.data_recv;
                if t <= self.n - self.k {
                    self.stream.push(x);
                    if t <= self.l_behind {
                        self.behind_sum = (self.behind_sum + x) % n;
                    }
                }
                // Data plan: pipe; correcting value; zeros; segment tail.
                let pipe_until = self.n - self.k - self.l_own;
                let out = if t <= pipe_until {
                    x
                } else if t == pipe_until + 1 {
                    let s = self.s_total.expect("S learned before commitment");
                    (self.w + n - s) % n
                } else if t <= self.n - self.l_own {
                    0
                } else {
                    self.stream[pipe_until + (t - (self.n - self.l_own)) - 1]
                };
                ctx.send(PhaseMsg::Data(out));
                // Validator duties for our own round.
                if t == self.pos + 1 {
                    if self.roles.is_accumulator {
                        // Round r1: originate the partial sum instead of a
                        // random value.
                        ctx.send(PhaseMsg::Val(self.behind_sum));
                    } else if self.roles.is_broadcast_validator {
                        // Round r2: delay origination until the pre-sent S
                        // arrives (see the Val arm below).
                    } else {
                        let v = self.rng.next_below(self.m_range);
                        ctx.send(PhaseMsg::Val(v));
                    }
                }
                // Round r2: the accumulator pre-sends S as the round's
                // validation value, ahead of the wave.
                if t == self.r2 && self.roles.is_accumulator {
                    let s = self.s_total.expect("S learned in round r1");
                    ctx.send(PhaseMsg::Val(s));
                }
            }
            PhaseMsg::Val(y) if !self.expect_data => {
                self.expect_data = true;
                let y = y % self.m_range;
                let r = self.data_recv;
                if r == self.pos + 1 {
                    // Incoming validation of our own round.
                    if self.roles.is_accumulator {
                        // r == r1: the fully accumulated S returns; absorb.
                        self.s_total = Some(y % n);
                    } else if self.roles.is_broadcast_validator {
                        // r == r2: the pre-sent S arrives; learn it and
                        // emit it as our (delayed) origination.
                        self.s_total = Some(y % n);
                        ctx.send(PhaseMsg::Val(y));
                    }
                    // Ordinary own round: absorb without checking.
                } else if r == self.r1 {
                    // Accumulation: add our behind-segment sum.
                    let v2 = (y % n + self.behind_sum) % n;
                    if self.roles.is_last_adder {
                        self.s_total = Some(v2);
                    }
                    ctx.send(PhaseMsg::Val(v2));
                } else if r == self.r2 {
                    if self.roles.is_accumulator {
                        // The broadcast value wrapped around; swallow it
                        // (we already sent our round-r2 validation early).
                    } else {
                        self.s_total = Some(y % n);
                        ctx.send(PhaseMsg::Val(y));
                    }
                } else {
                    ctx.send(PhaseMsg::Val(y));
                }
                if r == self.n {
                    ctx.terminate(Some(self.w));
                }
            }
            _ => ctx.terminate(Some(self.w)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_sim::Outcome;

    #[test]
    fn four_adversaries_control_phase_sum_lead() {
        for n in [32, 64, 100] {
            let protocol = PhaseSumLead::new(n).with_seed(n as u64);
            let coalition = Coalition::equally_spaced(n, 4, 1).unwrap();
            for w in [0u64, (n / 2) as u64, (n - 1) as u64] {
                let exec = PhaseSumAttack::new(w).run(&protocol, &coalition).unwrap();
                assert_eq!(exec.outcome, Outcome::Elected(w), "n={n} w={w}");
            }
        }
    }

    #[test]
    fn message_counts_stay_honest_shaped() {
        let n = 48;
        let protocol = PhaseSumLead::new(n).with_seed(2);
        let coalition = Coalition::equally_spaced(n, 4, 1).unwrap();
        let exec = PhaseSumAttack::new(5).run(&protocol, &coalition).unwrap();
        assert_eq!(exec.outcome, Outcome::Elected(5));
        assert!(exec.stats.sent.iter().all(|&s| s == 2 * n as u64));
    }

    #[test]
    fn more_than_four_adversaries_also_work() {
        let n = 60;
        let protocol = PhaseSumLead::new(n).with_seed(9);
        let coalition = Coalition::equally_spaced(n, 6, 1).unwrap();
        let exec = PhaseSumAttack::new(42).run(&protocol, &coalition).unwrap();
        assert_eq!(exec.outcome, Outcome::Elected(42));
    }

    #[test]
    fn three_adversaries_are_rejected() {
        // k = 3: the broadcast round falls after the commitment point —
        // the timing argument of E.4 genuinely needs the 4th adversary.
        let n = 64;
        let protocol = PhaseSumLead::new(n).with_seed(0);
        let coalition = Coalition::equally_spaced(n, 3, 1).unwrap();
        let err = PhaseSumAttack::new(0)
            .run(&protocol, &coalition)
            .unwrap_err();
        assert!(matches!(err, AttackError::Infeasible(_)));
    }

    #[test]
    fn corrupted_origin_is_rejected() {
        let n = 32;
        let protocol = PhaseSumLead::new(n).with_seed(0);
        let coalition = Coalition::new(n, vec![0, 8, 16, 24]).unwrap();
        assert!(PhaseSumAttack::new(0).run(&protocol, &coalition).is_err());
    }

    #[test]
    fn same_coalition_fails_against_phase_async_lead() {
        // The ablation's point: swap the sum for the random f and the
        // partial-sum relay becomes useless — k = 4 is far below √n + 3,
        // and the rushing attack is infeasible for it.
        use crate::phase_rushing::PhaseRushingAttack;
        use fle_core::protocols::PhaseAsyncLead;
        let n = 64;
        let protocol = PhaseAsyncLead::new(n).with_seed(6).with_fn_key(1);
        let coalition = Coalition::equally_spaced(n, 4, 1).unwrap();
        assert!(PhaseRushingAttack::new(10)
            .run(&protocol, &coalition)
            .is_err());
    }
}
