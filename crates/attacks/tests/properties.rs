//! Property-based tests for the attack layer: feasibility boundaries are
//! exact, and feasible attacks win with probability one.

use fle_attacks::{cubic_distances, plan_with_k, BasicSingleAttack, PhaseSumAttack, RushingAttack};
use fle_core::protocols::{ALeadUni, BasicLead, PhaseSumLead};
use fle_core::Coalition;
use proptest::prelude::*;
use ring_sim::Outcome;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Claim B.1 for arbitrary n, position and target.
    #[test]
    fn basic_single_always_wins(n in 2usize..40, pos_raw in any::<usize>(), w_raw in any::<u64>(), seed in any::<u64>()) {
        let pos = pos_raw % n;
        let w = w_raw % n as u64;
        let p = BasicLead::new(n).with_seed(seed);
        let exec = BasicSingleAttack::new(pos, w).run(&p).unwrap();
        prop_assert_eq!(exec.outcome, Outcome::Elected(w));
    }

    /// Rushing feasibility is *exactly* the Lemma 4.1 condition
    /// `max l_j <= k - 1` (over the active, non-origin coalition).
    #[test]
    fn rushing_feasibility_matches_lemma_4_1(
        n in 8usize..120,
        picks in proptest::collection::btree_set(1usize..120, 2..24),
    ) {
        let positions: Vec<usize> = picks.into_iter().filter(|&p| p < n).collect();
        prop_assume!(positions.len() >= 2 && positions.len() < n - 1);
        let c = Coalition::new(n, positions).unwrap();
        let feasible = RushingAttack::new(0).plan(&ALeadUni::new(n), &c).is_ok();
        let lemma = c.max_distance() < c.k();
        prop_assert_eq!(feasible, lemma);
    }

    /// Every feasible rushing layout forces every target, every seed.
    #[test]
    fn feasible_rushing_always_wins(n in 9usize..80, seed in any::<u64>(), w_raw in any::<u64>()) {
        let k = (n as f64).sqrt().ceil() as usize + 1;
        prop_assume!(k < n);
        let c = Coalition::equally_spaced(n, k, 1).unwrap();
        prop_assume!(c.max_distance() < c.k());
        let w = w_raw % n as u64;
        let p = ALeadUni::new(n).with_seed(seed);
        let exec = RushingAttack::new(w).run(&p, &c).unwrap();
        prop_assert_eq!(exec.outcome, Outcome::Elected(w));
        // Undetectability: honest message pattern preserved.
        prop_assert!(exec.stats.sent.iter().all(|&s| s == n as u64));
    }

    /// Cubic plans satisfy all of Theorem 4.3's structural constraints
    /// for every ring size.
    #[test]
    fn cubic_plan_invariants(n in 6usize..2000) {
        let plan = cubic_distances(n).unwrap();
        let k = plan.k();
        let d = plan.distances();
        prop_assert_eq!(d.iter().sum::<usize>(), n - k);
        prop_assert!(d[k - 1] < k);
        for i in 0..k - 1 {
            prop_assert!(d[i] >= d[i + 1]);
            prop_assert!(d[i] < d[i + 1] + k);
        }
        prop_assert!(k as f64 <= 2.0 * (n as f64).cbrt() + 1.0);
        // Positions are consistent with distances.
        let c = plan.coalition();
        prop_assert_eq!(c.k(), k);
        prop_assert!(!c.contains(0));
    }

    /// plan_with_k accepts exactly the k with enough covering capacity.
    #[test]
    fn cubic_k_capacity_boundary(n in 10usize..500) {
        let k_min = (2..n).find(|&k| (k - 1) * k * (k + 1) / 2 >= n - k).unwrap();
        prop_assert!(plan_with_k(n, k_min).is_ok());
        if k_min > 2 {
            prop_assert!(plan_with_k(n, k_min - 1).is_err());
        }
    }

    /// The E.4 attack wins on PhaseSumLead for every n and target where
    /// its plan is accepted.
    #[test]
    fn phase_sum_attack_wins_when_planned(n in 24usize..100, seed in any::<u64>(), w_raw in any::<u64>()) {
        let c = Coalition::equally_spaced(n, 4, 1).unwrap();
        let p = PhaseSumLead::new(n).with_seed(seed);
        let attack = PhaseSumAttack::new(w_raw % n as u64);
        prop_assume!(attack.plan(&p, &c).is_ok());
        let exec = attack.run(&p, &c).unwrap();
        prop_assert_eq!(exec.outcome, Outcome::Elected(w_raw % n as u64));
    }
}
