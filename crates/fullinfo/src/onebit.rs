//! One-round coin-flipping games in the full-information model.
//!
//! Every player broadcasts one bit; the coin is `f(x₁, …, xₙ)` for a fixed
//! boolean function `f`. Honest players broadcast fair coins; a rushing
//! coalition sees every honest bit before choosing its own (the worst
//! oblivious order, and the standard adversary of Ben-Or & Linial \[10\]).
//! The coalition's power is then exactly a combinatorial quantity of `f` —
//! the probability, over the honest bits, that the coalition's bits still
//! matter — which this module computes *exactly* by exhaustive enumeration
//! (`n ≤ 24`).
//!
//! The paper's Section 1.1 cites this line of work ([8, 9, 10, 11]) as the
//! origin of "protocols immune to large coalitions", and the paper's own
//! random function `f` in `PhaseAsyncLead` is directly inspired by
//! Alon & Naor's random-protocol argument \[9\].

/// A boolean function on `n` bits, the outcome rule of a one-round game.
///
/// Implementors must be pure: `eval` may depend only on `bits`.
pub trait CoinFunction {
    /// Number of players (bits).
    fn n(&self) -> usize;

    /// Evaluates the outcome for the assignment packed into `bits`
    /// (player `i`'s bit is `bits >> i & 1`).
    fn eval(&self, bits: u64) -> bool;

    /// Human-readable name for tables.
    fn name(&self) -> String;
}

/// Majority vote (use odd `n` for an unbiased honest coin).
#[derive(Debug, Clone, Copy)]
pub struct Majority {
    n: usize,
}

impl Majority {
    /// Creates the majority function on `n ≤ 24` players.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or greater than 24.
    pub fn new(n: usize) -> Self {
        assert!((1..=24).contains(&n), "majority supports 1..=24 players");
        Majority { n }
    }
}

impl CoinFunction for Majority {
    fn n(&self) -> usize {
        self.n
    }

    fn eval(&self, bits: u64) -> bool {
        2 * (bits & ((1 << self.n) - 1)).count_ones() as usize > self.n
    }

    fn name(&self) -> String {
        format!("majority({})", self.n)
    }
}

/// Parity (XOR) — perfectly unbiased honestly, but a *single* rushing
/// player dictates the outcome.
#[derive(Debug, Clone, Copy)]
pub struct Parity {
    n: usize,
}

impl Parity {
    /// Creates the parity function on `n ≤ 24` players.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or greater than 24.
    pub fn new(n: usize) -> Self {
        assert!((1..=24).contains(&n), "parity supports 1..=24 players");
        Parity { n }
    }
}

impl CoinFunction for Parity {
    fn n(&self) -> usize {
        self.n
    }

    fn eval(&self, bits: u64) -> bool {
        (bits & ((1 << self.n) - 1)).count_ones() % 2 == 1
    }

    fn name(&self) -> String {
        format!("parity({})", self.n)
    }
}

/// The dictatorship of player `i`: the outcome is `i`'s bit.
#[derive(Debug, Clone, Copy)]
pub struct Dictator {
    n: usize,
    player: usize,
}

impl Dictator {
    /// Creates a dictatorship on `n` players ruled by `player`.
    ///
    /// # Panics
    ///
    /// Panics if `player ≥ n` or `n > 24`.
    pub fn new(n: usize, player: usize) -> Self {
        assert!(player < n && n <= 24, "dictator needs player < n <= 24");
        Dictator { n, player }
    }
}

impl CoinFunction for Dictator {
    fn n(&self) -> usize {
        self.n
    }

    fn eval(&self, bits: u64) -> bool {
        bits >> self.player & 1 == 1
    }

    fn name(&self) -> String {
        format!("dictator({}, player {})", self.n, self.player)
    }
}

/// The tribes function of Ben-Or & Linial: players are split into tribes
/// of width `w`; the outcome is 1 iff some tribe is unanimously 1.
#[derive(Debug, Clone, Copy)]
pub struct Tribes {
    width: usize,
    tribes: usize,
}

impl Tribes {
    /// Creates `tribes` tribes of `width` players each (`width · tribes ≤ 24`).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the product exceeds 24.
    pub fn new(width: usize, tribes: usize) -> Self {
        assert!(
            width >= 1 && tribes >= 1,
            "tribes dimensions must be positive"
        );
        assert!(width * tribes <= 24, "tribes supports at most 24 players");
        Tribes { width, tribes }
    }
}

impl CoinFunction for Tribes {
    fn n(&self) -> usize {
        self.width * self.tribes
    }

    fn eval(&self, bits: u64) -> bool {
        let tribe_mask = (1u64 << self.width) - 1;
        (0..self.tribes).any(|t| (bits >> (t * self.width)) & tribe_mask == tribe_mask)
    }

    fn name(&self) -> String {
        format!("tribes({}x{})", self.tribes, self.width)
    }
}

/// An arbitrary boolean function supplied as a closure (for tests and
/// ad-hoc protocols).
pub struct FnCoin<F> {
    n: usize,
    f: F,
    label: String,
}

impl<F: Fn(u64) -> bool> FnCoin<F> {
    /// Wraps `f` as an `n`-player coin function.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or greater than 24.
    pub fn new(n: usize, label: &str, f: F) -> Self {
        assert!((1..=24).contains(&n), "FnCoin supports 1..=24 players");
        FnCoin {
            n,
            f,
            label: label.to_string(),
        }
    }
}

impl<F: Fn(u64) -> bool> CoinFunction for FnCoin<F> {
    fn n(&self) -> usize {
        self.n
    }

    fn eval(&self, bits: u64) -> bool {
        (self.f)(bits)
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// Exact power of a rushing coalition in a one-round game.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoalitionPower {
    /// `Pr[f = 1]` under fully honest play.
    pub honest_one: f64,
    /// Probability (over honest bits) that the coalition can force 1.
    pub force_one: f64,
    /// Probability that the coalition can force 0.
    pub force_zero: f64,
    /// Probability that the coalition controls the outcome outright
    /// (can force either value).
    pub control: f64,
}

impl CoalitionPower {
    /// The coalition's maximal gain over the honest probability, in the
    /// direction it helps most: `max(force_one − honest_one,
    /// force_zero − (1 − honest_one))`.
    pub fn bias(&self) -> f64 {
        (self.force_one - self.honest_one).max(self.force_zero - (1.0 - self.honest_one))
    }
}

/// Exhaustively computes a coalition's power in the one-round game of `f`.
/// `coalition` is a bitmask of player indices.
///
/// Runs in `O(2^n)` (`2^{n−k}` honest assignments × `2^k` coalition
/// completions).
///
/// # Panics
///
/// Panics if the coalition mask addresses players outside `0..n`.
pub fn coalition_power(f: &dyn CoinFunction, coalition: u64) -> CoalitionPower {
    let n = f.n();
    assert!(coalition >> n == 0, "coalition mask out of range");
    let all = (1u64 << n) - 1;
    let honest_mask = all & !coalition;
    let k = coalition.count_ones() as usize;
    let h = n - k;

    // Enumerate honest assignments by scattering the bits of `i` into the
    // honest positions, and coalition completions likewise.
    let honest_positions: Vec<usize> = (0..n).filter(|&b| honest_mask >> b & 1 == 1).collect();
    let coalition_positions: Vec<usize> = (0..n).filter(|&b| coalition >> b & 1 == 1).collect();

    let mut ones_honest = 0u64;
    let mut can_one = 0u64;
    let mut can_zero = 0u64;
    let mut both = 0u64;
    for i in 0..(1u64 << h) {
        let mut base = 0u64;
        for (bit, &pos) in honest_positions.iter().enumerate() {
            if i >> bit & 1 == 1 {
                base |= 1 << pos;
            }
        }
        let mut any_one = false;
        let mut any_zero = false;
        for j in 0..(1u64 << k) {
            let mut x = base;
            for (bit, &pos) in coalition_positions.iter().enumerate() {
                if j >> bit & 1 == 1 {
                    x |= 1 << pos;
                }
            }
            if f.eval(x) {
                any_one = true;
            } else {
                any_zero = true;
            }
            if any_one && any_zero {
                break;
            }
        }
        // Honest play: the coalition bits are 0 in `base`; count the
        // honest outcome by also averaging over *random* coalition bits.
        // For the honest probability we need all n bits random, so count
        // ones over the full cube lazily below instead.
        if any_one {
            can_one += 1;
        }
        if any_zero {
            can_zero += 1;
        }
        if any_one && any_zero {
            both += 1;
        }
    }
    for x in 0..(1u64 << n) {
        if f.eval(x) {
            ones_honest += 1;
        }
    }
    let denom = (1u64 << h) as f64;
    CoalitionPower {
        honest_one: ones_honest as f64 / (1u64 << n) as f64,
        force_one: can_one as f64 / denom,
        force_zero: can_zero as f64 / denom,
        control: both as f64 / denom,
    }
}

/// Finds the coalition of size `k` with the largest [`CoalitionPower::bias`]
/// by exhaustive search over all `C(n, k)` subsets. Returns the mask and
/// its power.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn best_coalition(f: &dyn CoinFunction, k: usize) -> (u64, CoalitionPower) {
    let n = f.n();
    assert!(k <= n, "coalition larger than player set");
    let mut best: Option<(u64, CoalitionPower)> = None;
    let mut mask = (1u64 << k) - 1; // smallest k-subset
    if k == 0 {
        return (0, coalition_power(f, 0));
    }
    loop {
        let power = coalition_power(f, mask);
        if best.is_none() || power.bias() > best.as_ref().expect("set").1.bias() {
            best = Some((mask, power));
        }
        // Gosper's hack: next k-subset in lexicographic order.
        let c = mask & mask.wrapping_neg();
        let r = mask + c;
        let next = (((r ^ mask) >> 2) / c) | r;
        if next >> n != 0 {
            break;
        }
        mask = next;
    }
    best.expect("k >= 1 has at least one subset")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn parity_is_honestly_fair_but_one_player_dictates() {
        let f = Parity::new(7);
        let none = coalition_power(&f, 0);
        assert!(close(none.honest_one, 0.5));
        assert!(close(none.force_one, 0.5));
        let solo = coalition_power(&f, 1 << 3);
        assert!(close(solo.force_one, 1.0));
        assert!(close(solo.force_zero, 1.0));
        assert!(close(solo.control, 1.0));
        assert!(close(solo.bias(), 0.5));
    }

    #[test]
    fn dictator_obeys_only_its_own_coalition() {
        let f = Dictator::new(6, 2);
        let with = coalition_power(&f, 1 << 2);
        assert!(close(with.control, 1.0));
        let without = coalition_power(&f, 0b11 << 4);
        assert!(close(without.control, 0.0));
        assert!(close(without.bias(), 0.0));
    }

    #[test]
    fn majority_single_voter_influence_matches_central_binomial() {
        // For majority on 5 players, one rushing voter matters exactly when
        // the other 4 bits split 2–2: C(4,2)/2^4 = 6/16.
        let f = Majority::new(5);
        let p = coalition_power(&f, 1);
        assert!(close(p.control, 6.0 / 16.0));
        assert!(close(p.honest_one, 0.5));
        // force_one = Pr[≥2 ones among 4] = (6+4+1)/16.
        assert!(close(p.force_one, 11.0 / 16.0));
        assert!(close(p.bias(), 11.0 / 16.0 - 0.5));
    }

    #[test]
    fn majority_power_grows_with_coalition_size() {
        let f = Majority::new(9);
        let mut last = -1.0;
        for k in 0..=9usize {
            let mask = (1u64 << k) - 1;
            let p = coalition_power(&f, mask);
            assert!(p.bias() >= last - 1e-12, "bias dropped at k = {k}");
            last = p.bias();
        }
        // A majority-of-the-majority controls outright.
        let p = coalition_power(&f, (1 << 5) - 1);
        assert!(close(p.control, 1.0));
    }

    #[test]
    fn tribes_unanimous_tribe_controls_upward() {
        let f = Tribes::new(3, 3);
        // A whole tribe can always force 1 (join unanimously) but cannot
        // always force 0 (some other tribe may already be unanimous).
        let p = coalition_power(&f, 0b111);
        assert!(close(p.force_one, 1.0));
        assert!(p.force_zero < 1.0);
    }

    #[test]
    fn tribes_honest_probability_matches_formula() {
        // Pr[some tribe unanimous] = 1 − (1 − 2^{−w})^t.
        let f = Tribes::new(3, 4);
        let p = coalition_power(&f, 0);
        let expect = 1.0 - (1.0 - 0.125f64).powi(4);
        assert!(close(p.honest_one, expect));
    }

    #[test]
    fn fncoin_wraps_arbitrary_functions() {
        let f = FnCoin::new(3, "and", |bits| bits & 0b111 == 0b111);
        assert_eq!(f.n(), 3);
        assert!(f.eval(0b111));
        assert!(!f.eval(0b110));
        assert_eq!(f.name(), "and");
    }

    #[test]
    fn best_coalition_finds_the_dictator() {
        let f = Dictator::new(6, 4);
        let (mask, power) = best_coalition(&f, 1);
        assert_eq!(mask, 1 << 4);
        assert!(close(power.control, 1.0));
    }

    #[test]
    fn best_coalition_of_zero_is_powerless() {
        let f = Majority::new(5);
        let (mask, power) = best_coalition(&f, 0);
        assert_eq!(mask, 0);
        assert!(close(power.bias(), 0.0));
    }

    #[test]
    fn coalition_mask_out_of_range_panics() {
        let f = Majority::new(3);
        let result = std::panic::catch_unwind(|| coalition_power(&f, 1 << 5));
        assert!(result.is_err());
    }

    #[test]
    fn power_quantities_are_probabilities() {
        let f = Tribes::new(2, 3);
        for mask in [0u64, 1, 0b11, 0b101010] {
            let p = coalition_power(&f, mask);
            for v in [p.honest_one, p.force_one, p.force_zero, p.control] {
                assert!((0.0..=1.0).contains(&v));
            }
            assert!(p.force_one >= p.honest_one - 1e-12);
            assert!(p.control <= p.force_one.min(p.force_zero) + 1e-12);
        }
    }
}
