//! # fle-fullinfo — the full-information coin-flipping model
//!
//! Yifrach & Mansour's Section 1.1 traces fair leader election back to the
//! *full-information model* of Ben-Or & Linial: players with unbounded
//! computation broadcast in turns, everyone sees everything, and a
//! coalition may coordinate and speak last. The paper's own
//! `PhaseAsyncLead` borrows its random outcome function `f` directly from
//! Alon & Naor's random-protocol argument in this model, so this crate
//! builds the model and the classic protocols around it from scratch:
//!
//! * [`BroadcastGame`] — sequential broadcast games with an exact minimax
//!   analysis of optimal coalition play ([`model`]).
//! * [`onebit`] — one-round boolean-function games ([`Majority`],
//!   [`Parity`], [`Dictator`], [`Tribes`]) with exact coalition power by
//!   enumeration, and exhaustive best-coalition search.
//! * [`IteratedMajority`] — Ben-Or & Linial's recursive majority-of-3 with
//!   an exact product-distribution DP: the cheapest controlling coalition
//!   costs `2^h = n^{log₃ 2}` ([`iterated`]).
//! * [`BatonGame`] — Saks' pass-the-baton leader election solved exactly
//!   by a two-dimensional DP under optimal coalition play ([`baton`]).
//! * [`LightestBin`] — plain two-bin lightest-bin election: the folklore
//!   building block behind the linear-resilience constructions, with the
//!   measured negative result (rushing coalitions double their share per
//!   round) that motivates their extra machinery ([`lightest_bin`]).
//!
//! ## Example
//!
//! ```
//! use fle_fullinfo::{coalition_power, BatonGame, Majority};
//!
//! // One rushing voter out of five flips majority with the central
//! // binomial probability 6/16.
//! let power = coalition_power(&Majority::new(5), 0b00001);
//! assert!((power.control - 6.0 / 16.0).abs() < 1e-12);
//!
//! // Saks' baton passing gives a lone adversary nothing at all.
//! assert!(BatonGame::new(9, 1).bias().abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baton;
pub mod iterated;
pub mod lightest_bin;
pub mod model;
pub mod onebit;

pub use baton::BatonGame;
pub use iterated::{IteratedMajority, StateDist};
pub use lightest_bin::{BinElection, LightestBin};
pub use model::{one_round_game, BroadcastGame, Turn};
pub use onebit::{
    best_coalition, coalition_power, CoalitionPower, CoinFunction, Dictator, FnCoin, Majority,
    Parity, Tribes,
};
