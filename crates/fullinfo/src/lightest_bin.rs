//! Plain two-bin lightest-bin leader election — the folklore building
//! block behind the linear-resilience full-information constructions the
//! paper cites in Section 1.1 (\[9\], \[11\], \[25\]) — together with the
//! *negative* finding that motivates their extra machinery.
//!
//! Each round, every surviving player announces one of two bins; the bin
//! with *fewer* occupants survives (ties to bin 0, empty bins never win).
//! Repeat until one player remains — the leader. Honest players pick bins
//! uniformly; a rushing coalition sees the honest choices first and splits
//! itself optimally each round (exhaustive search over its allocations).
//!
//! The classic intuition — "to stack a bin the coalition must join it,
//! which makes the bin heavy" — protects only the honest players'
//! *presence*: some honest players survive every round, so the honest
//! side keeps a constant chance. It does **not** keep the coalition near
//! its fair share: a rushing coalition roughly doubles its surviving
//! fraction per round, and even a single adversary converts the
//! two-player endgame with certainty once it gets there (it parks itself
//! in the lighter bin). The exact rates measured here quantify the gap
//! that Feige's many-bin rounds, committee endgames, and the
//! Russell–Zuckerman extractor machinery exist to close — and make the
//! contrast with Saks' baton passing (strictly stronger at moderate
//! `k/n`, see [`crate::baton`]) executable.

use ring_sim::rng::SplitMix64;

/// Result of one lightest-bin election.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinElection {
    /// The elected player id in `0..n`.
    pub leader: usize,
    /// Whether the leader is a coalition member.
    pub leader_corrupt: bool,
    /// Rounds until a single player remained.
    pub rounds: u32,
}

/// The two-bin lightest-bin game with `n` players, the first `k` of which
/// are coalition members (ids are exchangeable, so fixing the prefix loses
/// no generality).
#[derive(Debug, Clone, Copy)]
pub struct LightestBin {
    n: usize,
    k: usize,
}

impl LightestBin {
    /// Creates a game with `n ≥ 1` players and `k ≤ n` coalition members.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k > n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n >= 1, "need at least one player");
        assert!(k <= n, "coalition larger than player set");
        LightestBin { n, k }
    }

    /// Plays one election with the coalition using its optimal one-round
    /// split (exhaustive over its `k' + 1` allocations each round).
    ///
    /// Note the known two-player endgame artifact of plain lightest-bin:
    /// once one honest and one coalition player remain, the rushing
    /// adversary eventually isolates itself in the lighter bin and wins.
    /// Full constructions (Feige; Russell–Zuckerman \[25\]) switch
    /// sub-protocols below a size threshold; we keep the plain rule and
    /// report the resulting rates as-is.
    pub fn play(&self, seed: u64) -> BinElection {
        let mut rng = SplitMix64::new(seed);
        let mut honest: usize = self.n - self.k;
        let mut corrupt: usize = self.k;
        let mut rounds = 0u32;
        while honest + corrupt > 1 {
            rounds += 1;
            // Honest players choose bins uniformly.
            let mut h0 = 0usize;
            for _ in 0..honest {
                if rng.next_below(2) == 0 {
                    h0 += 1;
                }
            }
            let h1 = honest - h0;
            // The rushing coalition now places its `corrupt` members:
            // choose c0 (members into bin 0) to maximize the coalition
            // fraction of the surviving bin; among equally good fractions
            // prefer *fewer* survivors — that converges faster and, when
            // only coalition members remain, guarantees round progress
            // (an all-in-one-bin allocation would survive unshrunk and
            // loop forever).
            let (best_c0, _) = (0..=corrupt)
                .map(|c0| {
                    let c1 = corrupt - c0;
                    let (sh, sc) = survivors(h0, h1, c0, c1);
                    let total = sh + sc;
                    let frac = if total == 0 {
                        0.0
                    } else {
                        sc as f64 / total as f64
                    };
                    (c0, (frac, total))
                })
                .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then_with(|| b.1 .1.cmp(&a.1 .1)))
                .expect("at least one allocation");
            let c1 = corrupt - best_c0;
            let (sh, sc) = survivors(h0, h1, best_c0, c1);
            honest = sh;
            corrupt = sc;
        }
        let leader_corrupt = corrupt == 1;
        // Leader id: uniform among the surviving class for reporting.
        let leader = if leader_corrupt {
            rng.next_below(self.k.max(1) as u64) as usize
        } else {
            self.k + rng.next_below((self.n - self.k).max(1) as u64) as usize
        };
        BinElection {
            leader,
            leader_corrupt,
            rounds,
        }
    }

    /// Pr[leader is a coalition member] over `trials` seeded elections.
    pub fn corrupt_leader_rate(&self, seed: u64, trials: u32) -> f64 {
        let mut rng = SplitMix64::new(seed);
        let mut wins = 0u64;
        for _ in 0..trials {
            if self.play(rng.next_u64()).leader_corrupt {
                wins += 1;
            }
        }
        wins as f64 / trials as f64
    }

    /// The coalition's bias over its fair share `k/n`.
    pub fn bias(&self, seed: u64, trials: u32) -> f64 {
        self.corrupt_leader_rate(seed, trials) - self.k as f64 / self.n as f64
    }
}

/// Who survives when bins hold `h0 + c0` and `h1 + c1` players: the
/// strictly lighter non-empty bin; ties go to bin 0; if one bin is empty
/// the other survives (the round must make progress).
fn survivors(h0: usize, h1: usize, c0: usize, c1: usize) -> (usize, usize) {
    let b0 = h0 + c0;
    let b1 = h1 + c1;
    if b0 == 0 {
        return (h1, c1);
    }
    if b1 == 0 {
        return (h0, c0);
    }
    if b0 <= b1 {
        (h0, c0)
    } else {
        (h1, c1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_player_is_instant_leader() {
        let g = LightestBin::new(1, 0);
        let e = g.play(1);
        assert_eq!(e.rounds, 0);
        assert!(!e.leader_corrupt);
        let g = LightestBin::new(1, 1);
        assert!(g.play(1).leader_corrupt);
    }

    #[test]
    fn survivors_prefer_strictly_lighter_bin() {
        assert_eq!(survivors(1, 3, 0, 0), (1, 0));
        assert_eq!(survivors(3, 1, 0, 0), (1, 0));
        // Tie → bin 0.
        assert_eq!(survivors(2, 2, 0, 0), (2, 0));
        // Empty bin never wins.
        assert_eq!(survivors(0, 4, 0, 0), (4, 0));
        assert_eq!(survivors(0, 2, 1, 0), (0, 1));
    }

    #[test]
    fn honest_game_elects_everyone_eventually() {
        let g = LightestBin::new(6, 0);
        let mut seen = [false; 6];
        for seed in 0..400 {
            seen[g.play(seed).leader] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen {seen:?}");
    }

    #[test]
    fn honest_leader_rate_matches_fair_share_loosely() {
        // k players are "labelled" but play honestly when the coalition
        // optimizer has nothing to gain... here k = 0 vs k = n sanity.
        assert_eq!(LightestBin::new(8, 0).corrupt_leader_rate(3, 200), 0.0);
        assert_eq!(LightestBin::new(8, 8).corrupt_leader_rate(3, 200), 1.0);
    }

    #[test]
    fn honest_players_keep_a_constant_chance() {
        // The positive half of the lightest-bin intuition: stacking a bin
        // eliminates it, so honest players always survive into the
        // endgame — the honest side retains a constant winning chance
        // even against an optimally rushing coalition.
        let g = LightestBin::new(32, 4);
        let rate = g.corrupt_leader_rate(11, 400);
        assert!(rate < 0.9, "rate {rate}");
        assert!(1.0 - rate > 0.1, "honest chance vanished: {rate}");
    }

    #[test]
    fn rushing_coalitions_far_exceed_their_fair_share() {
        // The negative half (why [9]/[11]/[25] need more machinery): a
        // k/n = 1/8 coalition wins far more than 1/8 of elections.
        let g = LightestBin::new(32, 4);
        let rate = g.corrupt_leader_rate(11, 400);
        assert!(rate > 0.4, "rate {rate}");
    }

    #[test]
    fn baton_passing_is_the_stronger_simple_protocol() {
        use crate::baton::BatonGame;
        let (n, k) = (24, 8);
        let bin_rate = LightestBin::new(n, k).corrupt_leader_rate(5, 600);
        let baton_rate = BatonGame::new(n, k).corrupt_leader_probability();
        assert!(
            bin_rate > baton_rate,
            "lightest-bin {bin_rate} vs baton {baton_rate}"
        );
    }

    #[test]
    fn even_one_adversary_converts_the_endgame() {
        // A lone rushing adversary survives most rounds and always wins
        // the two-player endgame: its rate is far above 1/n.
        let g = LightestBin::new(16, 1);
        let rate = g.corrupt_leader_rate(3, 600);
        assert!(rate > 3.0 / 16.0, "rate {rate}");
    }

    #[test]
    fn rounds_are_logarithmic() {
        let g = LightestBin::new(64, 0);
        for seed in 0..20 {
            let e = g.play(seed);
            assert!(e.rounds <= 20, "rounds {}", e.rounds);
        }
    }

    #[test]
    #[should_panic(expected = "coalition larger")]
    fn oversized_coalition_panics() {
        let _ = LightestBin::new(4, 5);
    }
}
