//! Ben-Or & Linial's iterated majority-of-three game \[10\].
//!
//! `n = 3^h` players sit at the leaves of a complete ternary tree of
//! height `h`; the coin is the recursive majority of the leaf bits. A
//! rushing coalition fixes its leaves after seeing every honest bit, so a
//! corrupted leaf is simply a *free* leaf. This module computes the
//! coalition's power **exactly** with a product-distribution dynamic
//! program over the tree (no enumeration, so any height is tractable),
//! plus the classic structural results:
//!
//! * the cheapest controlling set costs exactly `2^h = n^{log₃ 2} ≈
//!   n^0.63` leaves (two children of every gate along a binary subtree),
//! * random or adversarial coalitions below that threshold control the
//!   root only with probability `< 1`.
//!
//! This is the paper's Section 1.1 reference point for "coalitions of
//! size `n / log² n` can bias" full-information games.

use ring_sim::rng::SplitMix64;

/// What a coalition can do to a subtree, given the honest bits below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    /// Value is 0 no matter what the coalition plays.
    Zero,
    /// Value is 1 no matter what the coalition plays.
    One,
    /// The coalition can steer the subtree to either value.
    Free,
}

/// Distribution of subtree control states over the honest leaves' randomness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateDist {
    /// Probability the subtree is pinned to 0.
    pub zero: f64,
    /// Probability the subtree is pinned to 1.
    pub one: f64,
    /// Probability the coalition controls the subtree.
    pub free: f64,
}

impl StateDist {
    const HONEST_LEAF: StateDist = StateDist {
        zero: 0.5,
        one: 0.5,
        free: 0.0,
    };
    const CORRUPT_LEAF: StateDist = StateDist {
        zero: 0.0,
        one: 0.0,
        free: 1.0,
    };

    /// Combines three independent child distributions through a majority
    /// gate, enumerating the 27 state combinations.
    fn maj3(a: StateDist, b: StateDist, c: StateDist) -> StateDist {
        const STATES: [NodeState; 3] = [NodeState::Zero, NodeState::One, NodeState::Free];
        let prob = |d: StateDist, s: NodeState| match s {
            NodeState::Zero => d.zero,
            NodeState::One => d.one,
            NodeState::Free => d.free,
        };
        let mut out = StateDist {
            zero: 0.0,
            one: 0.0,
            free: 0.0,
        };
        for sa in STATES {
            for sb in STATES {
                for sc in STATES {
                    let p = prob(a, sa) * prob(b, sb) * prob(c, sc);
                    if p == 0.0 {
                        continue;
                    }
                    let ones = [sa, sb, sc]
                        .iter()
                        .filter(|s| matches!(s, NodeState::One | NodeState::Free))
                        .count();
                    let zeros = [sa, sb, sc]
                        .iter()
                        .filter(|s| matches!(s, NodeState::Zero | NodeState::Free))
                        .count();
                    let can_one = ones >= 2;
                    let can_zero = zeros >= 2;
                    match (can_one, can_zero) {
                        (true, true) => out.free += p,
                        (true, false) => out.one += p,
                        (false, true) => out.zero += p,
                        (false, false) => unreachable!("majority always has a value"),
                    }
                }
            }
        }
        out
    }
}

/// The iterated majority-of-3 game of height `h` (so `n = 3^h` leaves).
#[derive(Debug, Clone, Copy)]
pub struct IteratedMajority {
    height: u32,
}

impl IteratedMajority {
    /// Creates a game of height `h ≤ 20` (a million-fold more leaves than
    /// any experiment needs, while keeping `3^h` inside `u64`).
    ///
    /// # Panics
    ///
    /// Panics if `height > 20`.
    pub fn new(height: u32) -> Self {
        assert!(height <= 20, "height capped at 20");
        IteratedMajority { height }
    }

    /// Tree height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of leaf players, `3^h`.
    pub fn n(&self) -> u64 {
        3u64.pow(self.height)
    }

    /// The size of the cheapest controlling coalition, `2^h = n^{log₃ 2}`.
    pub fn min_control_cost(&self) -> u64 {
        2u64.pow(self.height)
    }

    /// A concrete cheapest controlling set: recursively corrupt two
    /// children of every gate (leaves returned as sorted indices).
    pub fn cheapest_controlling_set(&self) -> Vec<u64> {
        fn build(height: u32, offset: u64, out: &mut Vec<u64>) {
            if height == 0 {
                out.push(offset);
                return;
            }
            let third = 3u64.pow(height - 1);
            // Corrupt subtrees 0 and 1; subtree 2 stays honest.
            build(height - 1, offset, out);
            build(height - 1, offset + third, out);
        }
        let mut out = Vec::with_capacity(self.min_control_cost() as usize);
        build(self.height, 0, &mut out);
        out
    }

    /// Exact state distribution of the root when `corrupted` (sorted,
    /// deduplicated leaf indices) plays last. `O(n)` time.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or the slice is not strictly
    /// increasing.
    pub fn root_distribution(&self, corrupted: &[u64]) -> StateDist {
        assert!(
            corrupted.windows(2).all(|w| w[0] < w[1]),
            "corrupted set must be strictly increasing"
        );
        if let Some(&last) = corrupted.last() {
            assert!(last < self.n(), "corrupted leaf out of range");
        }
        self.subtree(self.height, 0, corrupted)
    }

    fn subtree(&self, height: u32, offset: u64, corrupted: &[u64]) -> StateDist {
        if corrupted.is_empty() {
            // Fully honest subtree: pinned to a fair coin by symmetry.
            return StateDist::HONEST_LEAF;
        }
        if height == 0 {
            return if corrupted.contains(&offset) {
                StateDist::CORRUPT_LEAF
            } else {
                StateDist::HONEST_LEAF
            };
        }
        let third = 3u64.pow(height - 1);
        let mut children = [StateDist::HONEST_LEAF; 3];
        for (i, child) in children.iter_mut().enumerate() {
            let lo = offset + i as u64 * third;
            let hi = lo + third;
            let slice_start = corrupted.partition_point(|&x| x < lo);
            let slice_end = corrupted.partition_point(|&x| x < hi);
            *child = self.subtree(height - 1, lo, &corrupted[slice_start..slice_end]);
        }
        StateDist::maj3(children[0], children[1], children[2])
    }

    /// The probability a rushing coalition on the given leaves can force
    /// the root to 1: `Pr[One] + Pr[Free]`.
    pub fn force_one_probability(&self, corrupted: &[u64]) -> f64 {
        let d = self.root_distribution(corrupted);
        d.one + d.free
    }

    /// The probability the coalition controls the root outright.
    pub fn control_probability(&self, corrupted: &[u64]) -> f64 {
        self.root_distribution(corrupted).free
    }

    /// Control probability of a uniformly random coalition of size `k`,
    /// averaged over `trials` draws.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn random_coalition_control(&self, k: u64, seed: u64, trials: u32) -> f64 {
        let n = self.n();
        assert!(k <= n, "coalition larger than leaf set");
        let mut rng = SplitMix64::new(seed);
        let mut acc = 0.0;
        for _ in 0..trials {
            // Partial Fisher–Yates over leaf indices.
            let mut pool: Vec<u64> = (0..n).collect();
            for i in 0..k as usize {
                let j = i + rng.next_below((n as usize - i) as u64) as usize;
                pool.swap(i, j);
            }
            let mut set: Vec<u64> = pool[..k as usize].to_vec();
            set.sort_unstable();
            acc += self.control_probability(&set);
        }
        acc / trials as f64
    }

    /// A greedy adversarial coalition of size `k`: repeatedly corrupt the
    /// leaf that maximizes root control (ties to the lowest index).
    /// Exact greedy needs `O(k · n)` DP evaluations; tractable to `h ≈ 7`.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn greedy_coalition(&self, k: u64) -> Vec<u64> {
        let n = self.n();
        assert!(k <= n, "coalition larger than leaf set");
        let mut chosen: Vec<u64> = Vec::with_capacity(k as usize);
        for _ in 0..k {
            let mut best: Option<(u64, f64)> = None;
            for leaf in 0..n {
                if chosen.binary_search(&leaf).is_ok() {
                    continue;
                }
                let mut candidate = chosen.clone();
                let pos = candidate.partition_point(|&x| x < leaf);
                candidate.insert(pos, leaf);
                let score = self.control_probability(&candidate);
                if best.is_none() || score > best.expect("set").1 + 1e-15 {
                    best = Some((leaf, score));
                }
            }
            let (leaf, _) = best.expect("k <= n leaves remain");
            let pos = chosen.partition_point(|&x| x < leaf);
            chosen.insert(pos, leaf);
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn sizes_follow_powers() {
        let g = IteratedMajority::new(3);
        assert_eq!(g.n(), 27);
        assert_eq!(g.min_control_cost(), 8);
        assert_eq!(IteratedMajority::new(0).n(), 1);
    }

    #[test]
    fn honest_root_is_fair() {
        for h in 0..5 {
            let g = IteratedMajority::new(h);
            let d = g.root_distribution(&[]);
            assert!(close(d.zero, 0.5) && close(d.one, 0.5) && close(d.free, 0.0));
        }
    }

    #[test]
    fn cheapest_set_controls_with_certainty() {
        for h in 0..5 {
            let g = IteratedMajority::new(h);
            let set = g.cheapest_controlling_set();
            assert_eq!(set.len() as u64, g.min_control_cost());
            assert!(close(g.control_probability(&set), 1.0), "height {h}");
        }
    }

    #[test]
    fn no_smaller_set_controls_with_certainty() {
        // Exhaustive check at h = 2 (n = 9): every 3-subset controls with
        // probability < 1 (the threshold is 2^2 = 4).
        let g = IteratedMajority::new(2);
        for a in 0..9u64 {
            for b in a + 1..9 {
                for c in b + 1..9 {
                    let p = g.control_probability(&[a, b, c]);
                    assert!(p < 1.0 - 1e-12, "set {:?} controls", (a, b, c));
                }
            }
        }
    }

    #[test]
    fn height_one_distribution_by_hand() {
        // One corrupted leaf out of 3: the other two bits tie with
        // probability 1/2, so free = 1/2, zero = one = 1/4.
        let g = IteratedMajority::new(1);
        let d = g.root_distribution(&[0]);
        assert!(close(d.free, 0.5));
        assert!(close(d.zero, 0.25));
        assert!(close(d.one, 0.25));
        // Two corrupted leaves control outright.
        assert!(close(g.control_probability(&[0, 1]), 1.0));
    }

    #[test]
    fn dp_matches_exhaustive_enumeration_at_height_two() {
        // Cross-validate the DP against brute force over all 2^(9-k)
        // honest assignments using the onebit machinery.
        use crate::onebit::{coalition_power, FnCoin};
        fn recmaj(bits: u64) -> bool {
            let maj3 = |a: bool, b: bool, c: bool| (a as u8 + b as u8 + c as u8) >= 2;
            let leaf = |i: u64| bits >> i & 1 == 1;
            let sub = |t: u64| maj3(leaf(3 * t), leaf(3 * t + 1), leaf(3 * t + 2));
            maj3(sub(0), sub(1), sub(2))
        }
        let f = FnCoin::new(9, "recmaj", recmaj);
        let g = IteratedMajority::new(2);
        for corrupted in [vec![0u64], vec![0, 4], vec![0, 1, 8], vec![2, 4, 6, 8]] {
            let mask: u64 = corrupted.iter().map(|&i| 1u64 << i).sum();
            let brute = coalition_power(&f, mask);
            let d = g.root_distribution(&corrupted);
            assert!(close(brute.control, d.free), "{corrupted:?}");
            assert!(close(brute.force_one, d.one + d.free), "{corrupted:?}");
        }
    }

    #[test]
    fn control_grows_with_coalition() {
        let g = IteratedMajority::new(3);
        let mut last = 0.0;
        for k in [0u64, 1, 2, 4, 8, 16, 27] {
            let set: Vec<u64> = (0..k).collect();
            let p = g.control_probability(&set);
            assert!(p >= last - 1e-12, "control dropped at k = {k}");
            last = p;
        }
    }

    #[test]
    fn greedy_beats_prefix_coalitions() {
        let g = IteratedMajority::new(2);
        let greedy = g.greedy_coalition(4);
        let prefix: Vec<u64> = (0..4).collect();
        assert!(g.control_probability(&greedy) >= g.control_probability(&prefix) - 1e-12);
        // Greedy with the full budget reaches certainty.
        assert!(close(g.control_probability(&g.greedy_coalition(4)), 1.0));
    }

    #[test]
    fn random_coalitions_below_threshold_rarely_control() {
        let g = IteratedMajority::new(3);
        // 4 random leaves out of 27 (threshold is 8).
        let p = g.random_coalition_control(4, 7, 50);
        assert!(p < 0.5, "random control probability {p}");
    }

    #[test]
    fn deep_trees_stay_tractable() {
        // h = 12 → n = 531 441 leaves; the DP must stay linear.
        let g = IteratedMajority::new(12);
        let set = g.cheapest_controlling_set();
        assert_eq!(set.len(), 4096);
        assert!(close(g.control_probability(&set), 1.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_corrupted_set_panics() {
        let g = IteratedMajority::new(1);
        let _ = g.root_distribution(&[1, 0]);
    }
}
