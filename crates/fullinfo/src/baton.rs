//! Saks' *pass-the-baton* leader election \[26\] in the full-information
//! model.
//!
//! The baton starts at a designated player. Whoever holds it passes it to
//! a uniformly random player that has not yet held it; the player that
//! receives the baton last is the leader. Honest holders pass uniformly;
//! a coalition holder passes to whomever serves the coalition. Because the
//! game state is exchangeable within the honest and coalition pools, the
//! optimal coalition strategy and the exact probability that the leader is
//! corrupt reduce to a two-dimensional dynamic program, which this module
//! solves exactly — no sampling, any `n`.
//!
//! Saks proved the protocol is resilient to coalitions of size
//! `O(n / log n)`: the exact DP here lets the experiment harness plot the
//! corrupt-leader probability and locate the departure from the fair
//! share `k/n`.

use ring_sim::rng::SplitMix64;

/// Exact analysis of baton passing with `n` players and `k` coalition
/// members, under optimal (bias-maximizing) coalition play.
#[derive(Debug, Clone)]
pub struct BatonGame {
    n: usize,
    k: usize,
    /// `memo[h][c]` = Pr[final holder is corrupt] when `h` honest and `c`
    /// corrupt players have not yet held the baton and the *current*
    /// holder is honest (`.0`) or corrupt (`.1`).
    memo: Vec<Vec<(f64, f64)>>,
}

impl BatonGame {
    /// Builds the DP table for `n ≥ 1` players of which `k ≤ n` are
    /// coalition members.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k > n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n >= 1, "need at least one player");
        assert!(k <= n, "coalition larger than player set");
        let mut memo = vec![vec![(0.0, 0.0); k + 1]; n - k + 1];
        // Fill by increasing number of unvisited players.
        for h in 0..=(n - k) {
            for c in 0..=k {
                if h == 0 && c == 0 {
                    memo[h][c] = (0.0, 1.0);
                    continue;
                }
                // Honest holder: uniform pass.
                let honest = {
                    let total = (h + c) as f64;
                    let mut acc = 0.0;
                    if h > 0 {
                        acc += h as f64 / total * memo[h - 1][c].0;
                    }
                    if c > 0 {
                        acc += c as f64 / total * memo[h][c - 1].1;
                    }
                    acc
                };
                // Corrupt holder: best of passing to an honest or corrupt
                // unvisited player.
                let corrupt = {
                    let mut best = f64::MIN;
                    if h > 0 {
                        best = best.max(memo[h - 1][c].0);
                    }
                    if c > 0 {
                        best = best.max(memo[h][c - 1].1);
                    }
                    best
                };
                memo[h][c] = (honest, corrupt);
            }
        }
        BatonGame { n, k, memo }
    }

    /// Number of players.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Coalition size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Pr[the elected leader is a coalition member] when the baton starts
    /// at a *uniformly random* player and the coalition plays optimally.
    pub fn corrupt_leader_probability(&self) -> f64 {
        let h = self.n - self.k;
        let c = self.k;
        let mut acc = 0.0;
        if h > 0 {
            acc += h as f64 / self.n as f64 * self.memo[h - 1][c].0;
        }
        if c > 0 {
            acc += c as f64 / self.n as f64 * self.memo[h][c - 1].1;
        }
        acc
    }

    /// Same, conditioned on the baton starting at an honest player — the
    /// coalition's *best* start: the starter can never be the last
    /// receiver, so an honest start keeps every coalition member in the
    /// running.
    pub fn corrupt_leader_probability_honest_start(&self) -> f64 {
        let h = self.n - self.k;
        if h == 0 {
            return 1.0;
        }
        self.memo[h - 1][self.k].0
    }

    /// The coalition's bias over its fair share `k/n`.
    pub fn bias(&self) -> f64 {
        self.corrupt_leader_probability() - self.k as f64 / self.n as f64
    }

    /// Monte-Carlo cross-check of the DP: simulates the game with the
    /// *greedy* optimal strategy the DP induces (pass corrupt if that
    /// branch scores at least as high, else honest).
    pub fn simulate(&self, seed: u64, trials: u32) -> f64 {
        let mut rng = SplitMix64::new(seed);
        let mut corrupt_wins = 0u64;
        for _ in 0..trials {
            let mut h = self.n - self.k;
            let mut c = self.k;
            // Random start.
            let start_corrupt = rng.next_below(self.n as u64) < self.k as u64;
            let mut holder_corrupt = start_corrupt;
            if holder_corrupt {
                c -= 1;
            } else {
                h -= 1;
            }
            while h + c > 0 {
                let pass_to_corrupt = if holder_corrupt {
                    // Optimal play straight from the table.
                    let to_honest = if h > 0 {
                        self.memo[h - 1][c].0
                    } else {
                        f64::MIN
                    };
                    let to_corrupt = if c > 0 {
                        self.memo[h][c - 1].1
                    } else {
                        f64::MIN
                    };
                    to_corrupt >= to_honest
                } else {
                    rng.next_below((h + c) as u64) < c as u64
                };
                if pass_to_corrupt {
                    c -= 1;
                    holder_corrupt = true;
                } else {
                    h -= 1;
                    holder_corrupt = false;
                }
            }
            if holder_corrupt {
                corrupt_wins += 1;
            }
        }
        corrupt_wins as f64 / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn no_coalition_means_no_corrupt_leader() {
        for n in [1usize, 2, 5, 40] {
            let g = BatonGame::new(n, 0);
            assert!(close(g.corrupt_leader_probability(), 0.0));
            assert!(close(g.bias(), 0.0));
        }
    }

    #[test]
    fn full_coalition_always_wins() {
        for n in [1usize, 3, 10] {
            let g = BatonGame::new(n, n);
            assert!(close(g.corrupt_leader_probability(), 1.0));
        }
    }

    #[test]
    fn two_players_one_corrupt_by_hand() {
        // Uniform start: if the corrupt player starts (prob 1/2) it passes
        // to the honest one, who is then the last receiver → honest leader.
        // If the honest player starts it passes to the corrupt one →
        // corrupt leader. So Pr[corrupt leader] = 1/2: no advantage here.
        let g = BatonGame::new(2, 1);
        assert!(close(g.corrupt_leader_probability(), 0.5));
    }

    #[test]
    fn three_players_one_corrupt_by_hand() {
        // States (h, c, T): start uniform over 3 players.
        // Corrupt start (1/3): h=2,c=0, corrupt holder must pass honest;
        //   then chain of honest passes; last receiver honest → 0.
        // Honest start (2/3): h=1,c=1 honest holder passes uniformly:
        //   → corrupt (1/2): corrupt holds, h=1: must pass honest → honest
        //     leader: 0.
        //   → honest (1/2): h=0,c=1: honest must pass corrupt → corrupt
        //     leader: 1.
        // Total: 2/3 · 1/2 = 1/3 — exactly the fair share k/n.
        let g = BatonGame::new(3, 1);
        assert!(close(g.corrupt_leader_probability(), 1.0 / 3.0));
        assert!(close(g.bias(), 0.0));
    }

    #[test]
    fn single_adversary_gains_nothing() {
        // With k = 1 the lone adversary never holds useful choice: bias 0.
        for n in 2..12usize {
            let g = BatonGame::new(n, 1);
            assert!(g.bias().abs() < 1e-9, "n = {n}, bias {}", g.bias());
        }
    }

    #[test]
    fn bias_is_monotone_in_k() {
        let n = 30;
        let mut last = -1.0;
        for k in 0..=n {
            let p = BatonGame::new(n, k).corrupt_leader_probability();
            assert!(p >= last - 1e-12, "dropped at k = {k}");
            last = p;
        }
    }

    #[test]
    fn corrupt_probability_exceeds_fair_share_for_big_coalitions() {
        // Saks: bias grows once k = Ω(n / log n). At n = 64, k = 16 the
        // advantage is already strictly positive.
        let g = BatonGame::new(64, 16);
        assert!(g.bias() > 0.01, "bias {}", g.bias());
        // ...but a large fraction is needed to approach certainty.
        assert!(g.corrupt_leader_probability() < 0.9);
    }

    #[test]
    fn honest_start_favors_the_coalition() {
        // The starting player can never be elected (it receives nothing),
        // so a coalition prefers the baton to start outside it.
        for (n, k) in [(2, 1), (10, 3), (20, 7), (33, 11)] {
            let g = BatonGame::new(n, k);
            assert!(
                g.corrupt_leader_probability_honest_start()
                    >= g.corrupt_leader_probability() - 1e-12,
                "n = {n}, k = {k}"
            );
        }
    }

    #[test]
    fn simulation_matches_dp() {
        let g = BatonGame::new(12, 4);
        let exact = g.corrupt_leader_probability();
        let approx = g.simulate(99, 20_000);
        assert!(
            (exact - approx).abs() < 0.02,
            "exact {exact} vs sim {approx}"
        );
    }

    #[test]
    #[should_panic(expected = "coalition larger")]
    fn oversized_coalition_panics() {
        let _ = BatonGame::new(4, 5);
    }
}
