//! Sequential broadcast games and their exact minimax analysis.
//!
//! A *broadcast game* is the full-information model in its rawest form:
//! players speak in a fixed order, each message is public, the outcome is
//! a function of the transcript. Honest players broadcast uniform values;
//! coalition players broadcast whatever maximizes the coalition's
//! objective, with complete knowledge of the history (perfect information,
//! unbounded computation — exactly Ben-Or & Linial's setting).
//!
//! [`BroadcastGame::max_outcome_probability`] computes, by backward
//! induction over the game tree, the exact probability that an optimal
//! coalition forces a chosen outcome — the quantity every attack and
//! resilience claim in this model reduces to. Tractable whenever
//! `Π domain_sizes` is small (tests go up to ~2²⁰ transcripts).

/// One turn of a broadcast game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Turn {
    /// The player who speaks.
    pub player: usize,
    /// The size of its message domain (messages are `0..domain`).
    pub domain: u64,
}

/// The outcome function of a broadcast game: complete transcript to winner.
type OutcomeFn<'a> = Box<dyn Fn(&[u64]) -> u64 + 'a>;

/// A finite sequential broadcast game.
pub struct BroadcastGame<'a> {
    n: usize,
    turns: Vec<Turn>,
    outcome: OutcomeFn<'a>,
}

impl<'a> BroadcastGame<'a> {
    /// Creates a game for `n` players with the given turn order and
    /// outcome function over complete transcripts.
    ///
    /// # Panics
    ///
    /// Panics if a turn references a player `≥ n` or has an empty domain.
    pub fn new(n: usize, turns: Vec<Turn>, outcome: impl Fn(&[u64]) -> u64 + 'a) -> Self {
        assert!(
            turns.iter().all(|t| t.player < n),
            "turn references unknown player"
        );
        assert!(turns.iter().all(|t| t.domain >= 1), "empty message domain");
        BroadcastGame {
            n,
            turns,
            outcome: Box::new(outcome),
        }
    }

    /// Number of players.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The turn sequence.
    pub fn turns(&self) -> &[Turn] {
        &self.turns
    }

    /// Exact `max Pr[outcome = target]` when the players in `coalition`
    /// (a bitmask) collude with perfect information and everyone else
    /// broadcasts uniformly: backward induction over the transcript tree.
    ///
    /// # Panics
    ///
    /// Panics if the coalition mask addresses players outside `0..n`.
    pub fn max_outcome_probability(&self, coalition: u64, target: u64) -> f64 {
        assert!(coalition >> self.n == 0, "coalition mask out of range");
        let mut transcript = Vec::with_capacity(self.turns.len());
        self.recurse(coalition, target, &mut transcript)
    }

    /// Exact `min Pr[outcome = target]` under optimal coalition play — the
    /// "spoiler" direction (drive the probability down).
    ///
    /// # Panics
    ///
    /// Panics if the coalition mask addresses players outside `0..n`.
    pub fn min_outcome_probability(&self, coalition: u64, target: u64) -> f64 {
        assert!(coalition >> self.n == 0, "coalition mask out of range");
        let mut transcript = Vec::with_capacity(self.turns.len());
        self.recurse_min(coalition, target, &mut transcript)
    }

    /// The honest probability of `target` (empty coalition).
    pub fn honest_probability(&self, target: u64) -> f64 {
        self.max_outcome_probability(0, target)
    }

    fn recurse(&self, coalition: u64, target: u64, transcript: &mut Vec<u64>) -> f64 {
        let depth = transcript.len();
        if depth == self.turns.len() {
            return if (self.outcome)(transcript) == target {
                1.0
            } else {
                0.0
            };
        }
        let turn = self.turns[depth];
        let adversarial = coalition >> turn.player & 1 == 1;
        let mut best = 0.0f64;
        let mut sum = 0.0f64;
        for v in 0..turn.domain {
            transcript.push(v);
            let p = self.recurse(coalition, target, transcript);
            transcript.pop();
            best = best.max(p);
            sum += p;
        }
        if adversarial {
            best
        } else {
            sum / turn.domain as f64
        }
    }

    fn recurse_min(&self, coalition: u64, target: u64, transcript: &mut Vec<u64>) -> f64 {
        let depth = transcript.len();
        if depth == self.turns.len() {
            return if (self.outcome)(transcript) == target {
                1.0
            } else {
                0.0
            };
        }
        let turn = self.turns[depth];
        let adversarial = coalition >> turn.player & 1 == 1;
        let mut worst = f64::INFINITY;
        let mut sum = 0.0f64;
        for v in 0..turn.domain {
            transcript.push(v);
            let p = self.recurse_min(coalition, target, transcript);
            transcript.pop();
            worst = worst.min(p);
            sum += p;
        }
        if adversarial {
            worst
        } else {
            sum / turn.domain as f64
        }
    }
}

/// Builds the one-round bit-broadcast game for a boolean function with the
/// rushing order: honest players speak first (in index order), coalition
/// players last — the adversary's best oblivious schedule and the order
/// assumed by [`crate::onebit::coalition_power`].
pub fn one_round_game<'a>(
    f: &'a dyn crate::onebit::CoinFunction,
    coalition: u64,
) -> BroadcastGame<'a> {
    let n = f.n();
    let mut turns: Vec<Turn> = (0..n)
        .filter(|&p| coalition >> p & 1 == 0)
        .map(|p| Turn {
            player: p,
            domain: 2,
        })
        .collect();
    turns.extend((0..n).filter(|&p| coalition >> p & 1 == 1).map(|p| Turn {
        player: p,
        domain: 2,
    }));
    let order: Vec<usize> = turns.iter().map(|t| t.player).collect();
    BroadcastGame::new(n, turns, move |transcript| {
        let mut bits = 0u64;
        for (&player, &v) in order.iter().zip(transcript) {
            bits |= v << player;
        }
        u64::from(f.eval(bits))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onebit::{coalition_power, CoinFunction, Majority, Parity};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn honest_coin_is_fair() {
        let g = BroadcastGame::new(
            2,
            vec![
                Turn {
                    player: 0,
                    domain: 2,
                },
                Turn {
                    player: 1,
                    domain: 2,
                },
            ],
            |t| (t[0] + t[1]) % 2,
        );
        assert!(close(g.honest_probability(1), 0.5));
        assert!(close(g.honest_probability(0), 0.5));
    }

    #[test]
    fn last_speaker_dictates_xor() {
        let g = BroadcastGame::new(
            2,
            vec![
                Turn {
                    player: 0,
                    domain: 2,
                },
                Turn {
                    player: 1,
                    domain: 2,
                },
            ],
            |t| (t[0] + t[1]) % 2,
        );
        // Player 1 speaks last: sees t[0], flips to match any target.
        assert!(close(g.max_outcome_probability(0b10, 1), 1.0));
        assert!(close(g.min_outcome_probability(0b10, 1), 0.0));
        // Player 0 speaks first: no power at all.
        assert!(close(g.max_outcome_probability(0b01, 1), 0.5));
    }

    #[test]
    fn minimax_agrees_with_onebit_enumeration() {
        for (f, coalition) in [
            (
                &Majority::new(5) as &dyn crate::onebit::CoinFunction,
                0b00011u64,
            ),
            (&Majority::new(5), 0b10100),
            (&Parity::new(4), 0b0010),
        ] {
            let power = coalition_power(f, coalition);
            let game = one_round_game(f, coalition);
            assert!(
                close(game.max_outcome_probability(coalition, 1), power.force_one),
                "{} force_one",
                f.name()
            );
            assert!(
                close(
                    1.0 - game.min_outcome_probability(coalition, 1),
                    power.force_zero
                ),
                "{} force_zero",
                f.name()
            );
        }
    }

    #[test]
    fn larger_domains_work() {
        // A mod-3 sum game: the last speaker controls it completely.
        let g = BroadcastGame::new(
            3,
            (0..3)
                .map(|p| Turn {
                    player: p,
                    domain: 3,
                })
                .collect(),
            |t| t.iter().sum::<u64>() % 3,
        );
        assert!(close(g.max_outcome_probability(0b100, 2), 1.0));
        assert!(close(g.honest_probability(2), 1.0 / 3.0));
        // A first-speaking coalition member is powerless against two
        // honest uniform speakers.
        assert!(close(g.max_outcome_probability(0b001, 2), 1.0 / 3.0));
    }

    #[test]
    fn speaking_order_is_the_whole_story() {
        // The same coalition is a dictator when last and powerless when
        // first — the asynchronous-rushing phenomenon the ring protocols
        // fight with buffering (paper Section 3).
        let f = Parity::new(3);
        let game = one_round_game(&f, 0b100);
        assert!(close(game.max_outcome_probability(0b100, 1), 1.0));
        let reversed = BroadcastGame::new(
            3,
            vec![
                Turn {
                    player: 2,
                    domain: 2,
                },
                Turn {
                    player: 0,
                    domain: 2,
                },
                Turn {
                    player: 1,
                    domain: 2,
                },
            ],
            move |t| {
                // `t[i]` is the i-th *speaker*; map each back to its
                // player-indexed bit (the symmetric `<< 0` is deliberate).
                #[allow(clippy::identity_op)]
                let bits = (t[0] << 2) | (t[1] << 0) | (t[2] << 1);
                u64::from(f.eval(bits))
            },
        );
        assert!(close(reversed.max_outcome_probability(0b100, 1), 0.5));
    }

    #[test]
    fn empty_coalition_max_equals_min() {
        let g = BroadcastGame::new(
            2,
            vec![
                Turn {
                    player: 0,
                    domain: 2,
                },
                Turn {
                    player: 1,
                    domain: 2,
                },
            ],
            |t| t[0] & t[1],
        );
        assert!(close(g.max_outcome_probability(0, 1), 0.25));
        assert!(close(g.min_outcome_probability(0, 1), 0.25));
    }

    #[test]
    #[should_panic(expected = "unknown player")]
    fn bad_turn_panics() {
        let _ = BroadcastGame::new(
            1,
            vec![Turn {
                player: 3,
                domain: 2,
            }],
            |_| 0,
        );
    }
}
