//! Property-based tests for the full-information model: monotonicity of
//! coalition power, DP/brute-force agreement, and structural invariants
//! of the classic protocols.

use fle_fullinfo::{
    coalition_power, one_round_game, BatonGame, FnCoin, IteratedMajority, LightestBin, Majority,
    Parity, Tribes,
};
use proptest::prelude::*;

/// A random boolean function on `n ≤ 10` bits represented by its truth
/// table seed.
fn arbitrary_fn(n: usize, seed: u64) -> FnCoin<impl Fn(u64) -> bool> {
    FnCoin::new(n, "random", move |bits| {
        // A cheap keyed mix: deterministic pseudo-random truth table.
        let x = bits
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(seed)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        (x >> 17) & 1 == 1
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coalition_power_is_monotone_under_inclusion(
        seed in any::<u64>(),
        small in 0u64..(1 << 7),
        extra in 0u64..(1 << 7),
    ) {
        let f = arbitrary_fn(7, seed);
        let big = small | extra;
        let ps = coalition_power(&f, small);
        let pb = coalition_power(&f, big);
        prop_assert!(pb.force_one >= ps.force_one - 1e-12);
        prop_assert!(pb.force_zero >= ps.force_zero - 1e-12);
        prop_assert!(pb.control >= ps.control - 1e-12);
    }

    #[test]
    fn force_probabilities_sandwich_the_honest_one(
        seed in any::<u64>(),
        coalition in 0u64..(1 << 6),
    ) {
        let f = arbitrary_fn(6, seed);
        let p = coalition_power(&f, coalition);
        prop_assert!(p.force_one + 1e-12 >= p.honest_one);
        prop_assert!(p.force_zero + 1e-12 >= 1.0 - p.honest_one);
        // Inclusion–exclusion: force1 + force0 − control = 1.
        prop_assert!((p.force_one + p.force_zero - p.control - 1.0).abs() < 1e-9);
    }

    #[test]
    fn minimax_game_agrees_with_enumeration(
        seed in any::<u64>(),
        coalition in 0u64..(1 << 5),
    ) {
        let f = arbitrary_fn(5, seed);
        let power = coalition_power(&f, coalition);
        let game = one_round_game(&f, coalition);
        let max1 = game.max_outcome_probability(coalition, 1);
        prop_assert!((max1 - power.force_one).abs() < 1e-9);
    }

    #[test]
    fn baton_probability_is_a_probability_and_monotone(n in 2usize..40, k in 0usize..40) {
        let k = k.min(n);
        let g = BatonGame::new(n, k);
        let p = g.corrupt_leader_probability();
        prop_assert!((0.0..=1.0).contains(&p));
        if k < n {
            let p_next = BatonGame::new(n, k + 1).corrupt_leader_probability();
            prop_assert!(p_next + 1e-12 >= p);
        }
    }

    #[test]
    fn baton_beats_fair_share(n in 2usize..40, k in 1usize..40) {
        // Optimal play can never do worse than passing honestly.
        let k = k.min(n);
        let g = BatonGame::new(n, k);
        prop_assert!(g.bias() >= -1e-9);
    }

    #[test]
    fn lightest_bin_rate_is_bounded_by_extremes(n in 2usize..24, k in 0usize..24, seed in any::<u64>()) {
        let k = k.min(n);
        let rate = LightestBin::new(n, k).corrupt_leader_rate(seed, 40);
        prop_assert!((0.0..=1.0).contains(&rate));
        if k == 0 {
            prop_assert_eq!(rate, 0.0);
        }
        if k == n {
            prop_assert_eq!(rate, 1.0);
        }
    }

    #[test]
    fn iterated_majority_distribution_sums_to_one(h in 0u32..6, mask in 0u64..512) {
        let g = IteratedMajority::new(h);
        let n = g.n();
        let corrupted: Vec<u64> = (0..n.min(9)).filter(|&i| mask >> i & 1 == 1).collect();
        let d = g.root_distribution(&corrupted);
        prop_assert!((d.zero + d.one + d.free - 1.0).abs() < 1e-9);
        prop_assert!(d.zero >= -1e-12 && d.one >= -1e-12 && d.free >= -1e-12);
    }

    #[test]
    fn honest_symmetric_functions_are_fair(n in 1usize..12) {
        // Parity is always balanced; odd majority is balanced.
        let p = coalition_power(&Parity::new(n), 0);
        prop_assert!((p.honest_one - 0.5).abs() < 1e-12);
        if n % 2 == 1 {
            let m = coalition_power(&Majority::new(n), 0);
            prop_assert!((m.honest_one - 0.5).abs() < 1e-12);
        }
    }
}

#[test]
fn tribes_is_the_hardest_of_the_three_for_small_coalitions() {
    // With one corrupted player, tribes' control is below parity's (1.0)
    // and of the same order as majority's — the Ben-Or–Linial point that
    // no function does much better than majority against size-1
    // coalitions.
    let t = coalition_power(&Tribes::new(3, 3), 1);
    let m = coalition_power(&Majority::new(9), 1);
    let p = coalition_power(&Parity::new(9), 1);
    assert!(t.control < p.control);
    assert!(m.control < p.control);
}

#[test]
fn iterated_majority_dp_agrees_with_monte_carlo() {
    // Estimate control probability by sampling honest bits and checking
    // both-forcible exhaustively over the coalition bits.
    use ring_sim::rng::SplitMix64;
    let g = IteratedMajority::new(2);
    let corrupted = vec![0u64, 4, 8];
    let exact = g.control_probability(&corrupted);
    let mut rng = SplitMix64::new(5);
    let trials = 4000;
    let mut both = 0u32;
    for _ in 0..trials {
        let honest: u64 = rng.next_u64();
        let eval = |coal_bits: u64| {
            let mut bits = 0u64;
            let mut ci = 0;
            for leaf in 0..9u64 {
                let b = if corrupted.contains(&leaf) {
                    let b = coal_bits >> ci & 1;
                    ci += 1;
                    b
                } else {
                    honest >> leaf & 1
                };
                bits |= b << leaf;
            }
            let maj3 = |a: u64, b: u64, c: u64| u64::from(a + b + c >= 2);
            let s = |t: u64| {
                maj3(
                    bits >> (3 * t) & 1,
                    bits >> (3 * t + 1) & 1,
                    bits >> (3 * t + 2) & 1,
                )
            };
            maj3(s(0), s(1), s(2))
        };
        let mut can = [false, false];
        for cb in 0..8u64 {
            can[eval(cb) as usize] = true;
        }
        if can[0] && can[1] {
            both += 1;
        }
    }
    let estimate = both as f64 / trials as f64;
    assert!(
        (estimate - exact).abs() < 0.03,
        "exact {exact} vs Monte-Carlo {estimate}"
    );
}

#[test]
fn baton_simulation_tracks_dp_across_sizes() {
    for (n, k) in [(6, 2), (10, 3), (16, 8)] {
        let g = BatonGame::new(n, k);
        let exact = g.corrupt_leader_probability();
        let sim = g.simulate(11, 30_000);
        assert!((exact - sim).abs() < 0.02, "n={n} k={k}: {exact} vs {sim}");
    }
}
