//! Theorem 8.1: coin tosses from FLE executions and elections from
//! independent coins.

use criterion::{criterion_group, criterion_main, Criterion};
use fle_core::protocols::{ALeadUni, FleProtocol};
use fle_core::reductions::{coin_outcome_of_fle, elect_from_coins, CoinFromFle};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t81_reductions");
    g.bench_function("coin_from_fle_n64", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let coin = CoinFromFle::new(ALeadUni::new(64).with_seed(seed));
            black_box(coin.toss())
        });
    });
    g.bench_function("elect_from_3_coins_n16", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(elect_from_coins(3, |i| {
                let fle = ALeadUni::new(16).with_seed(seed * 3 + i as u64);
                coin_outcome_of_fle(fle.run_honest().outcome)
            }))
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
