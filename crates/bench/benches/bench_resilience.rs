//! Theorem 5.1: honest `A-LEADuni` executions (the Monte-Carlo unit of
//! the uniformity test) and sub-threshold feasibility scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fle_attacks::RushingAttack;
use fle_core::protocols::{ALeadUni, FleProtocol};
use fle_core::Coalition;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t51_resilience");
    g.sample_size(10);
    for &n in fle_bench::BENCH_SIZES {
        g.bench_with_input(BenchmarkId::new("honest_run", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(ALeadUni::new(n).with_seed(seed).run_honest())
            });
        });
        g.bench_with_input(BenchmarkId::new("infeasibility_scan", n), &n, |b, &n| {
            let p = ALeadUni::new(n).with_seed(0);
            b.iter(|| {
                let mut refused = 0;
                for k in 2..(n as f64).sqrt() as usize {
                    let coalition = Coalition::equally_spaced(n, k, 1).unwrap();
                    if RushingAttack::new(0).plan(&p, &coalition).is_err() {
                        refused += 1;
                    }
                }
                black_box(refused)
            });
        });
    }
    g.bench_function("honest_run_large", |b| {
        let n = fle_bench::BENCH_SIZE_LARGE;
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(ALeadUni::new(n).with_seed(seed).run_honest())
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
