//! Theorem 6.1 and Appendix E.4: `PhaseAsyncLead` honest runs, the
//! √n+3 rushing attack (with its `f`-preimage search), the burst
//! detection path, and the `PhaseSumLead` partial-sum attack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fle_attacks::{PhaseBurstAttack, PhaseRushingAttack, PhaseSumAttack};
use fle_core::protocols::{FleProtocol, PhaseAsyncLead, PhaseSumLead};
use fle_core::Coalition;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t61_e4_phase");
    g.sample_size(10);
    for &n in fle_bench::BENCH_SIZES {
        g.bench_with_input(BenchmarkId::new("honest_run", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(
                    PhaseAsyncLead::new(n)
                        .with_seed(seed)
                        .with_fn_key(9)
                        .run_honest(),
                )
            });
        });
        let k = (n as f64).sqrt() as usize + 3;
        let coalition = Coalition::equally_spaced(n, k, 1).unwrap();
        g.bench_with_input(BenchmarkId::new("rushing_attack", n), &n, |b, &n| {
            let p = PhaseAsyncLead::new(n).with_seed(2).with_fn_key(5);
            b.iter(|| black_box(PhaseRushingAttack::new(3).run(&p, &coalition).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("burst_detection", n), &n, |b, &n| {
            let p = PhaseAsyncLead::new(n).with_seed(2).with_fn_key(5);
            let burst_coalition = Coalition::equally_spaced(n, k.min(n / 4), 1).unwrap();
            b.iter(|| black_box(PhaseBurstAttack::new(1).run(&p, &burst_coalition).unwrap()));
        });
        let four = Coalition::equally_spaced(n, 4, 1).unwrap();
        g.bench_with_input(BenchmarkId::new("e4_sum_attack", n), &n, |b, &n| {
            let p = PhaseSumLead::new(n).with_seed(2);
            b.iter(|| black_box(PhaseSumAttack::new(3).run(&p, &four).unwrap()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
