//! Attacks on `A-LEADuni`: Claim B.1 (single adversary), Theorem 4.2
//! (rushing), Theorem C.1 (random located), Theorem 4.3 (cubic).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fle_attacks::{
    cubic_distances, BasicSingleAttack, CubicAttack, RandomLocatedAttack, RushingAttack,
};
use fle_core::protocols::{ALeadUni, BasicLead};
use fle_core::Coalition;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("attacks");
    g.sample_size(10);
    for &n in fle_bench::BENCH_SIZES {
        g.bench_with_input(BenchmarkId::new("b1_basic_single", n), &n, |b, &n| {
            let p = BasicLead::new(n).with_seed(1);
            b.iter(|| black_box(BasicSingleAttack::new(1, 3).run(&p).unwrap()));
        });
        let k = (n as f64).sqrt().ceil() as usize;
        let coalition = Coalition::equally_spaced(n, k, 1).unwrap();
        g.bench_with_input(BenchmarkId::new("t42_rushing", n), &n, |b, &n| {
            let p = ALeadUni::new(n).with_seed(1);
            b.iter(|| black_box(RushingAttack::new(3).run(&p, &coalition).unwrap()));
        });
        let plan = cubic_distances(n).unwrap();
        g.bench_with_input(BenchmarkId::new("t43_cubic", n), &n, |b, &n| {
            let p = ALeadUni::new(n).with_seed(1);
            b.iter(|| black_box(CubicAttack::new(3).run(&p, &plan).unwrap()));
        });
        let random = Coalition::random_bernoulli(n, 0.3, 5).unwrap();
        g.bench_with_input(BenchmarkId::new("tc1_random_located", n), &n, |b, &n| {
            let p = ALeadUni::new(n).with_seed(1);
            let attack = RandomLocatedAttack::new(3, 4);
            b.iter(|| black_box(attack.run(&p, &random).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("cubic_planning", n), &n, |b, &n| {
            b.iter(|| black_box(cubic_distances(n).unwrap()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
