//! Theorem 7.2 / Figure 2: Claim F.5 partitions, the quotient-tree
//! dictatorship, and the Lemma F.2 backward-induction solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fle_topology::tree_fle::TreeSumFle;
use fle_topology::two_party::{dichotomy, AlternatingProtocol};
use fle_topology::{figure2_graph, Graph, TreePartition};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("t72_topology");
    for n in [32usize, 128] {
        let graph = Graph::random_connected(n, 0.1, 7);
        g.bench_with_input(BenchmarkId::new("claim_f5_partition", n), &n, |b, _| {
            b.iter(|| black_box(TreePartition::claim_f5(&graph)));
        });
        let partition = TreePartition::claim_f5(&graph);
        g.bench_with_input(BenchmarkId::new("tree_dictator_run", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let fle = TreeSumFle::new(&graph, &partition, seed);
                black_box(fle.run_with_dictator(1))
            });
        });
    }
    g.bench_function("figure2_partition", |b| {
        b.iter(|| black_box(figure2_graph()));
    });
    g.bench_function("lemma_f2_dichotomy_4rounds", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let p = AlternatingProtocol::random(seed, 4, 2, 4);
            black_box(dichotomy(&p))
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
