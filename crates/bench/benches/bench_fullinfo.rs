//! Benchmarks for the `fullinfo` experiment rows (Section 1.1,
//! full-information model): exact coalition power, the iterated-majority
//! DP, and the baton-passing DP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fle_fullinfo::{coalition_power, BatonGame, IteratedMajority, LightestBin, Majority};

fn bench_onebit(c: &mut Criterion) {
    let mut group = c.benchmark_group("onebit_power");
    for &n in &[11usize, 15, 19] {
        group.bench_with_input(BenchmarkId::new("majority", n), &n, |b, &n| {
            let f = Majority::new(n);
            let mask = (1u64 << (n / 3)) - 1;
            b.iter(|| coalition_power(&f, mask));
        });
    }
    group.finish();
}

fn bench_iterated(c: &mut Criterion) {
    let mut group = c.benchmark_group("iterated_majority");
    for &h in &[4u32, 8, 12] {
        group.bench_with_input(BenchmarkId::new("cheapest_control", h), &h, |b, &h| {
            let g = IteratedMajority::new(h);
            let set = g.cheapest_controlling_set();
            b.iter(|| g.control_probability(&set));
        });
    }
    group.finish();
}

fn bench_leader_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("fullinfo_election");
    for &n in &[64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("baton_dp", n), &n, |b, &n| {
            b.iter(|| BatonGame::new(n, n / 8).corrupt_leader_probability());
        });
        group.bench_with_input(BenchmarkId::new("lightest_bin", n), &n, |b, &n| {
            let g = LightestBin::new(n, n / 8);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                g.play(seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_onebit, bench_iterated, bench_leader_election);
criterion_main!(benches);
