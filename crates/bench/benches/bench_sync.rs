//! Lemma D.5 / Section 6: probed executions measuring sent-count
//! synchronization gaps (the instrumentation overhead matters for
//! scaling the sync experiment up).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fle_attacks::{cubic_distances, CubicAttack};
use fle_core::protocols::{ALeadUni, FleProtocol, PhaseAsyncLead};
use ring_sim::SyncGapProbe;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sync_probes");
    g.sample_size(10);
    for &n in fle_bench::BENCH_SIZES {
        g.bench_with_input(BenchmarkId::new("a_lead_probed_honest", n), &n, |b, &n| {
            b.iter(|| {
                let p = ALeadUni::new(n).with_seed(1);
                let mut probe = SyncGapProbe::new((0..n).collect());
                let exec = p.run_with_probe(Vec::new(), &mut probe);
                black_box((exec, probe.max_gap()))
            });
        });
        g.bench_with_input(BenchmarkId::new("cubic_probed", n), &n, |b, &n| {
            let plan = cubic_distances(n).unwrap();
            b.iter(|| {
                let p = ALeadUni::new(n).with_seed(1);
                let mut probe = SyncGapProbe::new(plan.positions().to_vec());
                let nodes = CubicAttack::new(0).adversary_nodes(&p, &plan).unwrap();
                let exec = p.run_with_probe(nodes, &mut probe);
                black_box((exec, probe.max_gap()))
            });
        });
        g.bench_with_input(BenchmarkId::new("phase_probed_honest", n), &n, |b, &n| {
            b.iter(|| {
                let p = PhaseAsyncLead::new(n).with_seed(1).with_fn_key(2);
                let mut probe = SyncGapProbe::new((0..n).collect());
                let exec = p.run_with_probe(Vec::new(), &mut probe);
                black_box((exec, probe.max_gap()))
            });
        });
        g.bench_with_input(BenchmarkId::new("unprobed_honest", n), &n, |b, &n| {
            b.iter(|| black_box(ALeadUni::new(n).with_seed(1).run_honest()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
