//! Figure 1: coalition layout algebra (segments, distances, rendering).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fle_core::Coalition;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_coalition");
    for &n in fle_bench::BENCH_SIZES {
        let k = (n as f64).sqrt() as usize;
        g.bench_with_input(BenchmarkId::new("equally_spaced", n), &n, |b, &n| {
            b.iter(|| Coalition::equally_spaced(black_box(n), k, 1).unwrap());
        });
        let coalition = Coalition::equally_spaced(n, k, 1).unwrap();
        g.bench_with_input(BenchmarkId::new("segments", n), &coalition, |b, c| {
            b.iter(|| black_box(c.segments()));
        });
        g.bench_with_input(BenchmarkId::new("render", n), &coalition, |b, c| {
            b.iter(|| black_box(c.render_ascii(64)));
        });
        g.bench_with_input(BenchmarkId::new("bernoulli_sample", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(Coalition::random_bernoulli(n, 0.2, seed))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
