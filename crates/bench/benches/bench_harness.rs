//! The `fle-harness` batch runner vs the legacy serial trial loop.
//!
//! Measures the components of the harness speedup separately: the
//! allocation-reuse + monomorphization win (`batch_1thread` vs
//! `serial_builder` — same work, zero-allocation mono engine vs fresh
//! `SimBuilder` per trial), the dyn-dispatch cost in isolation
//! (`boxed_engine_1thread` — same reusable engine, but `Box<dyn Node>`
//! behaviours and per-trial clones), and the thread fan-out
//! (`batch_auto`). The batch results are byte-identical across all of
//! them, which `tests/golden_outcomes.rs` and the harness determinism
//! suite pin.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fle_attacks::PhaseRushingAttack;
use fle_core::protocols::{run_ring_in, FleProtocol, PhaseAsyncLead, PhaseMsg};
use fle_core::Coalition;
use fle_harness::{
    run_sweep, trial_seed, BatchConfig, HonestSweep, ProtocolKind, ScheduleSpec, SweepSpec,
};
use ring_sim::{Engine, Topology};
use std::hint::black_box;

const TRIALS: u64 = 50;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("harness_batch");
    g.sample_size(10);
    for &n in fle_bench::BENCH_SIZES {
        g.bench_with_input(BenchmarkId::new("serial_builder", n), &n, |b, &n| {
            // The pre-harness path: one heap-allocated SimBuilder working
            // set per trial, no reuse.
            b.iter(|| {
                let mut wins = vec![0u64; n];
                for i in 0..TRIALS {
                    let exec = PhaseAsyncLead::new(n)
                        .with_seed(trial_seed(1, i))
                        .with_fn_key(9)
                        .run_honest();
                    wins[exec.outcome.elected().expect("honest") as usize] += 1;
                }
                black_box(wins)
            });
        });
        g.bench_with_input(BenchmarkId::new("boxed_engine_1thread", n), &n, |b, &n| {
            // The PR 2 batch path: reusable engine, but `Box<dyn Node>`
            // behaviours (vtable dispatch, one box per node per trial) and
            // a cloned Execution per trial.
            let mut engine: Engine<PhaseMsg> = Engine::new(Topology::ring(n));
            b.iter(|| {
                let mut wins = vec![0u64; n];
                for i in 0..TRIALS {
                    let p = PhaseAsyncLead::new(n)
                        .with_seed(trial_seed(1, i))
                        .with_fn_key(9);
                    let exec = run_ring_in(
                        &mut engine,
                        n,
                        |id| p.honest_node(id),
                        Vec::new(),
                        &p.wakes(),
                    );
                    wins[exec.outcome.elected().expect("honest") as usize] += 1;
                }
                black_box(wins)
            });
        });
        let sweep = |threads| {
            SweepSpec::Honest(HonestSweep {
                protocol: ProtocolKind::PhaseAsyncLead,
                n,
                fn_key: 9,
                batch: BatchConfig {
                    trials: TRIALS,
                    base_seed: 1,
                    threads,
                },
                batch_width: 0,
                schedule: ScheduleSpec::Fifo,
                fault: None,
            })
        };
        g.bench_with_input(BenchmarkId::new("batch_1thread", n), &n, |b, &n| {
            let cfg = sweep(1);
            let _ = n;
            b.iter(|| black_box(run_sweep(&cfg).expect("valid spec")));
        });
        g.bench_with_input(BenchmarkId::new("batch_auto", n), &n, |b, &n| {
            let cfg = sweep(0);
            let _ = n;
            b.iter(|| black_box(run_sweep(&cfg).expect("valid spec")));
        });
    }
    g.finish();

    // The attack fast path vs its SimBuilder baseline: a √n + 3 rushing
    // coalition against PhaseAsyncLead n=16, per-trial seeds, one cached
    // TrialCache vs a fresh one-shot build per trial (the BENCH_4
    // `phase_rushing_n16` arms, criterion-shaped).
    let mut g = c.benchmark_group("attack_paths");
    g.sample_size(10);
    let n = 16;
    let coalition = Coalition::equally_spaced(n, 7, 1).expect("valid layout");
    let attack = PhaseRushingAttack::new(3);
    g.bench_function("rushing_simbuilder", |b| {
        b.iter(|| {
            let mut elected = 0u64;
            for i in 0..TRIALS {
                let p = PhaseAsyncLead::new(n).with_seed(trial_seed(1, i));
                let exec = attack.run(&p, &coalition).expect("feasible");
                elected += u64::from(exec.outcome.elected().is_some());
            }
            black_box(elected)
        });
    });
    g.bench_function("rushing_cached_engine", |b| {
        let mut cache = fle_attacks::PhaseRushingCache::ring(n);
        b.iter(|| {
            let mut elected = 0u64;
            for i in 0..TRIALS {
                let p = PhaseAsyncLead::new(n).with_seed(trial_seed(1, i));
                let exec = attack.run_in(&p, &coalition, &mut cache).expect("feasible");
                elected += u64::from(exec.outcome.elected().is_some());
            }
            black_box(elected)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
