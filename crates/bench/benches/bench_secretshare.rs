//! Benchmarks for the `shamir` experiment row (Section 1.1, asynchronous
//! fully-connected network): share/reconstruct primitives and full
//! `A-LEADfc` elections, honest and under the pooling attack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fle_core::protocols::FleProtocol;
use fle_secretshare::{reconstruct, run_fc_attack, share, ALeadFc, Gf};
use ring_sim::rng::SplitMix64;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("shamir_primitives");
    for &n in &[8usize, 32, 128] {
        let t = n.div_ceil(2) - 1;
        group.bench_with_input(BenchmarkId::new("share", n), &n, |b, &n| {
            let mut rng = SplitMix64::new(7);
            b.iter(|| share(Gf::new(42), t, n, &mut rng).expect("valid"));
        });
        let mut rng = SplitMix64::new(7);
        let shares = share(Gf::new(42), t, n, &mut rng).expect("valid");
        group.bench_with_input(BenchmarkId::new("reconstruct", n), &n, |b, _| {
            b.iter(|| reconstruct(&shares, t).expect("enough shares"));
        });
    }
    group.finish();
}

fn bench_elections(c: &mut Criterion) {
    let mut group = c.benchmark_group("a_lead_fc");
    group.sample_size(10);
    for &n in &[8usize, 12, 16] {
        group.bench_with_input(BenchmarkId::new("honest", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                ALeadFc::new(n).with_seed(seed).run_honest().outcome
            });
        });
        group.bench_with_input(BenchmarkId::new("pooled_attack", n), &n, |b, &n| {
            let coalition: Vec<usize> = (0..n.div_ceil(2)).collect();
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let p = ALeadFc::new(n).with_seed(seed);
                run_fc_attack(&p, &coalition, seed % n as u64).outcome
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_elections);
criterion_main!(benches);
