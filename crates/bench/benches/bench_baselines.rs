//! Section 1.1 message-complexity baselines vs the fair protocols: the
//! `msg` table's workloads as timed benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fle_baselines::{random_ids, worst_case_ids, ChangRoberts, ItaiRodeh, PetersonDkr};
use fle_core::protocols::{ALeadUni, FleProtocol, PhaseAsyncLead};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("msg_baselines");
    g.sample_size(10);
    for &n in fle_bench::BENCH_SIZES {
        g.bench_with_input(BenchmarkId::new("chang_roberts_avg", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(ChangRoberts::new(random_ids(n, seed)).run())
            });
        });
        g.bench_with_input(BenchmarkId::new("chang_roberts_worst", n), &n, |b, &n| {
            b.iter(|| black_box(ChangRoberts::new(worst_case_ids(n)).run()));
        });
        g.bench_with_input(BenchmarkId::new("peterson_worst", n), &n, |b, &n| {
            b.iter(|| black_box(PetersonDkr::new(worst_case_ids(n)).run()));
        });
        g.bench_with_input(BenchmarkId::new("itai_rodeh", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(ItaiRodeh::new(n, seed).run())
            });
        });
        g.bench_with_input(BenchmarkId::new("a_lead_uni", n), &n, |b, &n| {
            b.iter(|| black_box(ALeadUni::new(n).with_seed(1).run_honest()));
        });
        g.bench_with_input(BenchmarkId::new("phase_async_lead", n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    PhaseAsyncLead::new(n)
                        .with_seed(1)
                        .with_fn_key(1)
                        .run_honest(),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
