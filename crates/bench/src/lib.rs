//! # fle-bench — Criterion benchmarks
//!
//! One bench target per reproduced table/figure (see DESIGN.md §2):
//!
//! * `bench_coalition` — Figure 1 layout algebra and rendering.
//! * `bench_attacks` — Claim B.1, Theorem 4.2, Theorem C.1, Theorem 4.3.
//! * `bench_resilience` — Theorem 5.1 (honest runs + infeasibility scans).
//! * `bench_phase` — Theorem 6.1 and Appendix E.4.
//! * `bench_topology` — Theorem 7.2 / Figure 2 machinery.
//! * `bench_reductions` — Theorem 8.1.
//! * `bench_sync` — Lemma D.5 / Section 6 synchronization probes.
//! * `bench_baselines` — Section 1.1 message-complexity baselines.
//! * `bench_harness` — the `fle-harness` batch runner vs the legacy
//!   serial trial loop (allocation reuse and thread fan-out).
//!
//! Run with `cargo bench --workspace`. The benches exercise exactly the
//! code paths the `fle-lab` experiments use, so their throughput numbers
//! double as a capacity plan for scaling the experiments up.

/// Ring sizes used across the benches, chosen so every attack in the
/// suite is feasible at the largest size.
pub const BENCH_SIZES: &[usize] = &[64, 256];

/// A larger size for the cheap honest-execution benches.
pub const BENCH_SIZE_LARGE: usize = 1024;
