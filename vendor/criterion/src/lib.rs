//! Offline shim for the subset of [criterion](https://crates.io/crates/criterion)
//! this workspace uses.
//!
//! The build environment has no network access, so the real harness cannot
//! be fetched. This shim keeps the bench sources unchanged and implements a
//! plain wall-clock timer: each benchmark runs a short warm-up followed by a
//! fixed number of timed iterations and reports the mean time per iteration.
//!
//! Like real criterion, the binary understands `cargo test`'s `--test` flag:
//! in test mode every benchmark body executes exactly once (a smoke run), so
//! `cargo test` stays fast while still proving the benches work.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export: benches use `std::hint::black_box` via this path in some
/// criterion versions.
pub use std::hint::black_box;

/// The benchmark manager handed to each target function.
pub struct Criterion {
    test_mode: bool,
    measure_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs `harness = false` bench binaries with `--test`;
        // `cargo bench` passes `--bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            measure_iters: 10,
        }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.test_mode {
            eprintln!("group {name}");
        }
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, None, &id, f);
        self
    }

    /// Final configuration hook (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim ignores measurement time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let name = self.name.clone();
        run_one(self.criterion, Some(&name), &id, |b| f(b, input));
        self
    }

    /// Benchmark `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = self.name.clone();
        run_one(self.criterion, Some(&name), &id, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// A benchmark label: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Label by parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timer handle passed to each benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `iters` times after one warm-up call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Batched timing; the shim times `routine` like [`Bencher::iter`],
    /// regenerating the input each call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        std::hint::black_box(routine(input));
        let start = Instant::now();
        for _ in 0..self.iters {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }
}

/// Batch sizing hints (ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small input batches.
    SmallInput,
    /// Large input batches.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

fn run_one<F>(criterion: &mut Criterion, group: Option<&str>, id: &BenchmarkId, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let iters = if criterion.test_mode {
        1
    } else {
        criterion.measure_iters
    };
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if !criterion.test_mode {
        let per_iter = bencher.elapsed.as_nanos() / u128::from(iters.max(1));
        match group {
            Some(g) => eprintln!("  {g}/{}: {} ns/iter", id.label, per_iter),
            None => eprintln!("  {}: {} ns/iter", id.label, per_iter),
        }
    }
}

/// Group several target functions under one name, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
