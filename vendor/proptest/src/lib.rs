//! Offline shim for the subset of [proptest](https://crates.io/crates/proptest)
//! this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim keeps the property-test sources unchanged: it provides
//! the [`proptest!`] macro, integer/float range strategies,
//! [`any`](arbitrary::any),
//! `prop_map`, the `collection::{vec, btree_set}` strategies, and the
//! `prop_assert*` / [`prop_assume!`] macros. Case generation is a
//! deterministic SplitMix64 stream seeded from the test name, so failures
//! reproduce exactly across runs; failing inputs are printed before the
//! panic, mirroring real proptest's minimal-failure report (without
//! shrinking).

#![forbid(unsafe_code)]

use std::fmt;

/// Runner configuration. Only the knobs the workspace uses are modelled.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed: the property is falsified by this input.
    Fail(String),
    /// The input was rejected by `prop_assume!`; try another one.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Per-case result type produced by the body the [`proptest!`] macro wraps.
pub type TestCaseResult = Result<(), TestCaseError>;

pub mod test_runner {
    //! The deterministic RNG driving case generation.

    /// SplitMix64: tiny, fast, and deterministic. One instance is created
    /// per property, seeded from the property's name, so each test sees a
    /// stable input stream across runs and platforms.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from raw state.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seed deterministically from a test name (FNV-1a over the bytes).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` via rejection sampling.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "next_below bound must be positive");
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let x = self.next_u64();
                if x < zone {
                    return x % bound;
                }
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Something that can produce values of type [`Strategy::Value`] from
    /// the deterministic RNG. Mirrors real proptest's trait of the same
    /// name (without shrinking machinery).
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.next_below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.next_below(span) as i64) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    /// Strategy producing a constant value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point for "any value of this type".

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }
    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> u16 {
            rng.next_u64() as u16
        }
    }
    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }
    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }
    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies: vectors and B-tree sets of generated elements.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Accepted size specifications (a fixed size or a half-open range).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.next_below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from the range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng).max(self.size.lo);
            let mut out = BTreeSet::new();
            // Bounded number of draws: if the element space is smaller than
            // the requested size we return what we managed to collect, like
            // real proptest does after its retry budget.
            for _ in 0..(target.max(1) * 64) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }

    /// A strategy for B-tree sets with `size` distinct elements drawn from
    /// `element`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    /// Alias so `prop::collection::vec(..)` works as with the real crate.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError, TestCaseResult,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skip the current case unless `cond` holds (the input is rejected, not a
/// failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Define property tests. Supports the subset of the real macro's grammar
/// used in this workspace:
///
/// The `#[test]` attribute on each property is forwarded verbatim, so the
/// example below omits it to run the generated function directly:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     fn my_property(x in 0u64..10, v in proptest::collection::vec(0usize..5, 1..4)) {
///         prop_assert!(x < 10);
///         prop_assert!(v.len() < 4);
///     }
/// }
/// my_property();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            $(let __strategy_input = $strat;
              #[allow(unused_variables)]
              let $arg = ();
              let $arg = __strategy_input;)*
            let mut __executed: u32 = 0;
            let mut __attempts: u32 = 0;
            while __executed < __config.cases {
                __attempts += 1;
                if __attempts > __config.cases.saturating_mul(16).max(64) {
                    panic!(
                        "proptest '{}': too many rejected inputs ({} attempts, {} executed)",
                        stringify!($name),
                        __attempts,
                        __executed
                    );
                }
                $(let $arg = $crate::strategy::Strategy::sample(&$arg, &mut __rng);)*
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)* ""),
                    $(&$arg,)*
                );
                let __result: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __result {
                    ::std::result::Result::Ok(()) => {
                        __executed += 1;
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' falsified (case {} of {})\ninputs: {}\n{}",
                            stringify!($name),
                            __executed + 1,
                            __config.cases,
                            __inputs,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}
